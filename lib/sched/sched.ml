open Lrp_engine

let tick_interval = Time.ms 10.

let decay_interval = Time.sec 1.

let quantum_ticks = 10

let priority_user = 50

let priority_max = 127

type state = Runnable | Sleeping | Exited

type thread = {
  tid : int;
  name : string;
  mutable nice : int;
  mutable p_cpu : float;
  mutable priority : int;
  mutable state : state;
  mutable enqueue_seq : int;
  mutable quantum : int;
  mutable sleep_start : Time.t;
  mutable account : thread option;
  mutable ticks : int;
}

type t = {
  mutable threads : thread list;
  mutable next_tid : int;
  mutable next_seq : int;
  mutable loadavg : float;
}

let create () = { threads = []; next_tid = 1; next_seq = 0; loadavg = 0. }

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let recompute_priority th =
  match th.account with
  | Some owner ->
      th.priority <-
        clamp priority_user priority_max
          (priority_user + (int_of_float owner.p_cpu / 4) + (2 * owner.nice))
  | None ->
      th.priority <-
        clamp priority_user priority_max
          (priority_user + (int_of_float th.p_cpu / 4) + (2 * th.nice))

let add_thread t ?(nice = 0) ~name () =
  let th =
    { tid = t.next_tid; name; nice = clamp (-20) 20 nice; p_cpu = 0.;
      priority = priority_user; state = Sleeping; enqueue_seq = 0; quantum = 0;
      sleep_start = Time.zero; account = None; ticks = 0 }
  in
  t.next_tid <- t.next_tid + 1;
  recompute_priority th;
  t.threads <- th :: t.threads;
  th

let set_account th owner = th.account <- owner

let name th = th.name
let tid th = th.tid
let nice th = th.nice
let priority th = th.priority
let p_cpu th = th.p_cpu
let is_runnable th = th.state = Runnable
let is_sleeping th = th.state = Sleeping
let ticks_charged th = th.ticks

let runnable_count t =
  List.length (List.filter (fun th -> th.state = Runnable) t.threads)

let decay_factor load = 2. *. load /. ((2. *. load) +. 1.)

let make_runnable t ~now th =
  match th.state with
  | Runnable -> ()
  | Exited -> invalid_arg "Sched.make_runnable: thread has exited"
  | Sleeping ->
      (* 4.3BSD updatepri(): decay p_cpu once per whole second slept, so a
         thread that waits on I/O regains good priority. *)
      let slept_sec = int_of_float (Time.to_sec (now -. th.sleep_start)) in
      if slept_sec > 0 then begin
        let f = decay_factor t.loadavg in
        let rec apply n cpu = if n = 0 then cpu else apply (n - 1) (cpu *. f) in
        th.p_cpu <- apply (min slept_sec 20) th.p_cpu
      end;
      recompute_priority th;
      th.state <- Runnable;
      th.enqueue_seq <- t.next_seq;
      t.next_seq <- t.next_seq + 1;
      th.quantum <- 0

let sleep _t ~now th =
  if th.state = Exited then invalid_arg "Sched.sleep: thread has exited";
  th.state <- Sleeping;
  th.sleep_start <- now

let exit_thread t th =
  th.state <- Exited;
  t.threads <- List.filter (fun other -> other.tid <> th.tid) t.threads

let better a b =
  a.priority < b.priority || (a.priority = b.priority && a.enqueue_seq < b.enqueue_seq)

let pick t =
  let best acc th =
    if th.state <> Runnable then acc
    else
      match acc with
      | None -> Some th
      | Some cur -> if better th cur then Some th else acc
  in
  List.fold_left best None t.threads

let should_preempt t ~current =
  match pick t with
  | None -> false
  | Some best -> best.tid <> current.tid && best.priority < current.priority

let requeue t th =
  th.enqueue_seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  th.quantum <- 0

let charge_tick _t th =
  let target = match th.account with Some owner -> owner | None -> th in
  target.p_cpu <- Float.min 255. (target.p_cpu +. 1.);
  target.ticks <- target.ticks + 1;
  recompute_priority target;
  recompute_priority th;
  th.quantum <- th.quantum + 1

let quantum_expired th = th.quantum >= quantum_ticks

let reset_quantum th = th.quantum <- 0

let decay t =
  (* Smooth the instantaneous runnable count into a load average, then decay
     every thread's usage, as 4.3BSD's schedcpu() does once per second. *)
  let inst = float_of_int (runnable_count t) in
  t.loadavg <- (0.8 *. t.loadavg) +. (0.2 *. inst);
  let f = decay_factor t.loadavg in
  let decay_thread th =
    th.p_cpu <- (f *. th.p_cpu) +. float_of_int th.nice;
    if th.p_cpu < 0. then th.p_cpu <- 0.;
    recompute_priority th
  in
  List.iter decay_thread t.threads

let load_average t = t.loadavg

let register_metrics t m ~prefix =
  let module Metrics = Lrp_trace.Metrics in
  Metrics.gauge m (prefix ^ ".loadavg") (fun () -> t.loadavg);
  Metrics.gauge m (prefix ^ ".runnable") (fun () ->
      float_of_int (runnable_count t));
  Metrics.gauge m (prefix ^ ".threads") (fun () ->
      float_of_int (List.length t.threads))

let pp_thread fmt th =
  Fmt.pf fmt "%s(tid=%d pri=%d p_cpu=%.1f %s)" th.name th.tid th.priority
    th.p_cpu
    (match th.state with
     | Runnable -> "run"
     | Sleeping -> "sleep"
     | Exited -> "exit")
