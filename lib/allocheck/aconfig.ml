(* Configuration for lrp_allocheck.

   The analyzer is scoped by an explicit, checked-in configuration
   (allocheck.conf at the repo root for the live tree; tests build their
   own records) rather than by heuristics: the zero-allocation contract
   covers exactly the entry points named here plus their transitive
   callees inside the followed directories, and the escape rules cover
   exactly the cell-resident directories.  Everything else in the tree is
   free to allocate — experiments, reporting and setup code are supposed
   to.

   Function names are written [Module.func] using the short module name
   ("Engine.run_batch") or the full compilation-unit name
   ("Lrp_engine__Engine.run_batch"); submodule bindings use
   [Module.Sub.func]. *)

type t = {
  cmt_dirs : string list;
      (* Build-relative directories scanned for .cmt files, e.g.
         "_build/default/lib".  Only modules found here are loadable. *)
  entries : string list;
      (* Hot-path entry points: roots of the allocation walk. *)
  follow_dirs : string list;
      (* Source directories whose functions are analyzed transitively
         when reached from an entry.  Calls leaving these directories are
         treated as boundaries (the callee's own cost is its own
         contract). *)
  assume : string list;
      (* Functions treated as boundaries even when reached inside
         [follow_dirs] — used for modelled-cost machinery that is
         documented to allocate (with the reason recorded here, in the
         conf file comments). *)
  escape_dirs : string list;
      (* Cell-resident source directories: every top-level function here
         is checked for stores that publish values to module-level or
         cross-cell state (the interprocedural form of lint rule C2). *)
  cross_cell_fields : string list;
      (* Record/array fields that other cells read: the uplink outbox
         columns.  Stores into them are findings unless the writer is
         sanctioned. *)
  escape_sanctions : string list;
      (* Functions allowed to write cross-cell or domain-local state:
         the uplink outbox writers and the per-domain Idspace install. *)
  allocating_extra : string list;
      (* Additional fully-applied stdlib calls to treat as allocating,
         beyond the built-in table in Allocwalk. *)
}

let empty =
  {
    cmt_dirs = [];
    entries = [];
    follow_dirs = [];
    assume = [];
    escape_dirs = [];
    cross_cell_fields = [];
    escape_sanctions = [];
    allocating_extra = [];
  }

(* ------------------------------------------------------------------ *)
(* Conf-file parser: one directive per line, '#' comments.             *)
(*                                                                     *)
(*   cmt-dir _build/default/lib                                        *)
(*   entry Engine.run_batch                                            *)
(*   follow lib/engine                                                 *)
(*   assume Trace.dump                                                 *)
(*   escape-dir lib/net                                                *)
(*   cross-cell-field ob_pkt                                           *)
(*   escape-sanction Fabric.uplink_forward                             *)
(*   allocating List.map                                               *)
(* ------------------------------------------------------------------ *)

let parse text : (t, string) result =
  let err = ref None in
  let cfg = ref empty in
  let add f v = cfg := f !cfg v in
  List.iteri
    (fun i line ->
      if !err = None then
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then
          match String.index_opt line ' ' with
          | None -> err := Some (Printf.sprintf "line %d: missing argument" (i + 1))
          | Some j ->
              let key = String.sub line 0 j in
              let v = String.trim (String.sub line j (String.length line - j)) in
              let app f = add (fun c v -> f c v) v in
              (match key with
              | "cmt-dir" -> app (fun c v -> { c with cmt_dirs = c.cmt_dirs @ [ v ] })
              | "entry" -> app (fun c v -> { c with entries = c.entries @ [ v ] })
              | "follow" ->
                  app (fun c v -> { c with follow_dirs = c.follow_dirs @ [ v ] })
              | "assume" -> app (fun c v -> { c with assume = c.assume @ [ v ] })
              | "escape-dir" ->
                  app (fun c v -> { c with escape_dirs = c.escape_dirs @ [ v ] })
              | "cross-cell-field" ->
                  app (fun c v ->
                      { c with cross_cell_fields = c.cross_cell_fields @ [ v ] })
              | "escape-sanction" ->
                  app (fun c v ->
                      { c with escape_sanctions = c.escape_sanctions @ [ v ] })
              | "allocating" ->
                  app (fun c v ->
                      { c with allocating_extra = c.allocating_extra @ [ v ] })
              | _ ->
                  err :=
                    Some (Printf.sprintf "line %d: unknown directive %S" (i + 1) key)))
    (String.split_on_char '\n' text);
  match !err with Some e -> Error e | None -> Ok !cfg

let load path : (t, string) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse text
  | exception Sys_error e -> Error e
