(* Loading the Typedtree from dune's .cmt output.

   Dune compiles every library module with binary annotations; this
   module walks a build directory (e.g. _build/default/lib), reads each
   .cmt, and indexes the top-level value bindings of every compilation
   unit so the analyzer can resolve a reference like
   [Pdot (Pdot (Pident Lrp_engine, "Twheel"), "pop_boundcell")] — the
   shape dune's wrapped-library aliases produce — back to the function's
   typedtree.

   Submodule bindings are indexed under compound names ("Sub.f"), and a
   per-short-name index ("Engine" -> "Lrp_engine__Engine") lets config
   files use readable names. *)

type func = {
  fn_name : string;  (* "run_batch", or "Sub.f" for submodule bindings *)
  fn_ident : Ident.t;
  fn_expr : Typedtree.expression;
  fn_line : int;
}

type modl = {
  md_key : string;  (* compilation-unit name, e.g. "Lrp_engine__Engine" *)
  md_source : string;  (* source path as recorded in the cmt *)
  md_funcs : func list;  (* top-level value bindings, in structure order *)
  md_top_ids : Ident.t list;  (* every module-level bound value ident *)
}

type t = {
  mods : (string, modl) Hashtbl.t;
  shorts : (string, string list) Hashtbl.t;  (* short name -> keys *)
  mutable cmt_files : int;
}

(* All value idents bound by a pattern (top-level lets can be tuples). *)
let rec pat_idents : type k. k Typedtree.general_pattern -> Ident.t list =
 fun p ->
  let open Typedtree in
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (p, id, _) -> id :: pat_idents p
  | Tpat_tuple ps -> List.concat_map pat_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_idents ps
  | Tpat_variant (_, Some p, _) -> pat_idents p
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> pat_idents p) fields
  | Tpat_array ps -> List.concat_map pat_idents ps
  | Tpat_lazy p -> pat_idents p
  | Tpat_or (a, b, _) -> pat_idents a @ pat_idents b
  | Tpat_value v -> pat_idents (v :> value general_pattern)
  | Tpat_exception p -> pat_idents p
  | _ -> []

let funcs_of_structure (str : Typedtree.structure) =
  let funcs = ref [] in
  let top_ids = ref [] in
  let rec item prefix (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let ids = pat_idents vb.vb_pat in
            top_ids := ids @ !top_ids;
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, name) ->
                funcs :=
                  {
                    fn_name = prefix ^ name.txt;
                    fn_ident = id;
                    fn_expr = vb.vb_expr;
                    fn_line = vb.vb_loc.loc_start.pos_lnum;
                  }
                  :: !funcs
            | _ -> ())
          vbs
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | _ -> ()
  and module_binding prefix (mb : Typedtree.module_binding) =
    match (mb.mb_id, mb.mb_expr.mod_desc) with
    | Some id, Tmod_structure sub ->
        List.iter (item (prefix ^ Ident.name id ^ ".")) sub.str_items
    | Some id, Tmod_constraint ({ mod_desc = Tmod_structure sub; _ }, _, _, _)
      ->
        List.iter (item (prefix ^ Ident.name id ^ ".")) sub.str_items
    | _ -> ()
  in
  List.iter (item "") str.str_items;
  (List.rev !funcs, !top_ids)

let short_of key =
  (* "Lrp_engine__Engine" -> "Engine"; plain names map to themselves. *)
  let rec last_sep i =
    if i + 1 >= String.length key then None
    else if key.[i] = '_' && key.[i + 1] = '_' then
      match last_sep (i + 2) with Some j -> Some j | None -> Some (i + 2)
    else last_sep (i + 1)
  in
  match last_sep 0 with
  | Some j -> String.sub key j (String.length key - j)
  | None -> key

let add_cmt t path =
  match Cmt_format.read_cmt path with
  | exception _ -> ()  (* stale or foreign cmt: not our problem *)
  | cmt -> (
      match (cmt.cmt_annots, cmt.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some source ->
          t.cmt_files <- t.cmt_files + 1;
          let funcs, top_ids = funcs_of_structure str in
          let key = cmt.cmt_modname in
          let m =
            {
              md_key = key;
              md_source = Lrp_report.Pathspec.normalize source;
              md_funcs = funcs;
              md_top_ids = top_ids;
            }
          in
          Hashtbl.replace t.mods key m;
          let short = short_of key in
          if short <> key then
            Hashtbl.replace t.shorts short
              (key :: (try Hashtbl.find t.shorts short with Not_found -> []))
      | _ -> ())

let rec scan_dir t dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
      Array.sort String.compare entries;
      Array.iter
        (fun e ->
          let p = Filename.concat dir e in
          if Sys.is_directory p then scan_dir t p
          else if Filename.check_suffix e ".cmt" then add_cmt t p)
        entries

let load ~root dirs =
  let t = { mods = Hashtbl.create 64; shorts = Hashtbl.create 64; cmt_files = 0 } in
  List.iter (fun d -> scan_dir t (Filename.concat root d)) dirs;
  t

let find_mod t key = Hashtbl.find_opt t.mods key

(* Resolve a dotted [Module.func] name from a config file. *)
let resolve_name t name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some _ ->
      (* Try every module/value split, longest module prefix first. *)
      let comps = String.split_on_char '.' name in
      let n = List.length comps in
      let rec try_split k =
        if k = 0 then None
        else
          let mods = List.filteri (fun i _ -> i < k) comps in
          let value =
            String.concat "." (List.filteri (fun i _ -> i >= k) comps)
          in
          let keys =
            let joined = String.concat "__" mods in
            joined
            :: (match mods with
               | [ m ] -> ( try Hashtbl.find t.shorts m with Not_found -> [])
               | _ -> [])
          in
          let hit =
            List.find_map
              (fun key ->
                match Hashtbl.find_opt t.mods key with
                | None -> None
                | Some m -> (
                    match
                      List.find_opt (fun f -> f.fn_name = value) m.md_funcs
                    with
                    | Some f -> Some (m, f)
                    | None -> None))
              keys
          in
          (match hit with Some _ -> hit | None -> try_split (k - 1))
      in
      try_split (n - 1)

(* Resolve a typedtree reference from inside [current] to a loaded
   binding.  [Pident] references are same-unit top-level bindings
   (matched by ident, so shadowed names cannot confuse the graph);
   dotted paths go through the wrapped-library name mangling. *)
let resolve_path t ~(current : modl) (path : Path.t) =
  let rec flatten p acc =
    match p with
    | Path.Pident id -> Some (Ident.name id :: acc)
    | Path.Pdot (p, s) -> flatten p (s :: acc)
    | _ -> None
  in
  match path with
  | Path.Pident id ->
      List.find_map
        (fun f -> if Ident.same f.fn_ident id then Some (current, f) else None)
        current.md_funcs
  | _ -> (
      match flatten path [] with
      | None -> None
      | Some comps -> resolve_name t (String.concat "." comps))
