(* Domain-escape checking: lint rule C2 made interprocedural.

   A Shardsim cell's advance runs concurrently with every other cell;
   values it constructs must stay cell-private until handed over through
   the sanctioned uplink outbox.  The source-level lint (rule C2) flags
   mutation of module-level state syntactically, one file at a time; this
   pass works on the typedtree, so it can trace a store's *root* — the
   base the mutated structure hangs off — through field chains and
   container reads, and it covers every function in the cell-resident
   directories rather than just the cell modules themselves.

   A store is a finding when its root is module-level state (a top-level
   binding of the enclosing unit, or any dotted global), when it lands in
   a configured cross-cell field (the uplink outbox columns), or when it
   targets domain-local storage (Domain.DLS).  Stores rooted at function
   parameters or locals are cell-private and pass.

   The walk deliberately covers *all* top-level functions in the
   configured directories, not just those reachable from cell advance:
   cells dispatch through [Engine.target] trampolines (Obj.magic under
   the hood), so static reachability is not computable — checking
   everything is the sound over-approximation, and the sanction list
   carries the few coordinator-side writers.

   Suppression tag: [escape-ok]. *)

open Typedtree

type ctx = {
  top_ids : Ident.t list;
  cross_fields : string list;
  sanctioned : bool;
  file : string;
  supp : Lrp_report.Suppress.t;
  emit : Lrp_report.Finding.t -> unit;
}

let report ctx ~loc msg =
  if not ctx.sanctioned then begin
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col = loc.Location.loc_start.pos_cnum - loc.Location.loc_start.pos_bol in
    if not (Lrp_report.Suppress.claim ctx.supp ~tag:"escape-ok" ~line) then
      ctx.emit (Lrp_report.Finding.v ~rule:"ESC" ~file:ctx.file ~line ~col msg)
  end

(* Container reads we trace the root through: mutating [Array.get g i]
   mutates [g]. *)
let accessors =
  [ "Array.get"; "Array.unsafe_get"; "Bytes.get"; "Bytes.unsafe_get"; "!" ]

type root =
  | Local  (* parameter or let-bound: cell-private *)
  | Global of string  (* module-level or dotted global *)
  | Cross of string  (* reached through a cross-cell field *)

let rec root_of ctx (e : expression) : root =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      if List.exists (Ident.same id) ctx.top_ids then Global (Ident.name id)
      else Local
  | Texp_ident (p, _, _) -> Global (Path.name p)
  | Texp_field (b, _, lbl) ->
      if List.mem lbl.Types.lbl_name ctx.cross_fields then
        Cross lbl.Types.lbl_name
      else root_of ctx b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when List.mem (Allocwalk.stdlib_name p) accessors -> (
      match List.find_map (fun (_, a) -> a) args with
      | Some a -> root_of ctx a
      | None -> Local)
  | Texp_open (_, b) -> root_of ctx b
  | _ -> Local

let check_target ctx ~loc ~via (e : expression) =
  match root_of ctx e with
  | Local -> ()
  | Global name ->
      report ctx ~loc
        (Printf.sprintf
           "%s publishes to module-level state '%s' reachable from other \
            cells; route it through the uplink outbox"
           via name)
  | Cross field ->
      report ctx ~loc
        (Printf.sprintf
           "%s writes cross-cell field '%s' outside the sanctioned outbox \
            writers"
           via field)

(* Mutating stdlib entry points and, for each, which argument is the
   mutated structure (0-based position among the supplied arguments). *)
let mutators =
  [
    (":=", 0); ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.fill", 0);
    ("Hashtbl.add", 0); ("Hashtbl.replace", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.clear", 0);
    ("Queue.add", 1); ("Queue.push", 1); ("Queue.transfer", 1);
    ("Stack.push", 1);
    ("Atomic.set", 0); ("Atomic.exchange", 0); ("Atomic.incr", 0);
    ("Atomic.decr", 0); ("Atomic.fetch_and_add", 0);
    ("Atomic.compare_and_set", 0);
    (* blits mutate their destination *)
    ("Array.blit", 2); ("Bytes.blit", 2); ("Bytes.blit_string", 2);
  ]

let nth_arg args k =
  let rec go i = function
    | [] -> None
    | (_, Some a) :: rest -> if i = k then Some a else go (i + 1) rest
    | (_, None) :: rest -> go i rest
  in
  go 0 args

let check_fn ctx (fn : Cmtload.func) =
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_setfield (base, _, lbl, _) ->
        let name = lbl.Types.lbl_name in
        if List.mem name ctx.cross_fields then
          report ctx ~loc:e.exp_loc
            (Printf.sprintf
               "store into cross-cell field '%s' outside the sanctioned \
                outbox writers"
               name)
        else check_target ctx ~loc:e.exp_loc ~via:("store into field '" ^ name ^ "'") base
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let name = Allocwalk.stdlib_name p in
        if name = "Domain.DLS.set" then
          report ctx ~loc:e.exp_loc
            "store into domain-local state (Domain.DLS.set) escapes the cell"
        else
          match List.assoc_opt name mutators with
          | Some k -> (
              match nth_arg args k with
              | Some target ->
                  check_target ctx ~loc:e.exp_loc ~via:(name ^ " on a value") target
              | None -> ())
          | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it fn.Cmtload.fn_expr
