(* The allocation walk: one pass over a hot-path function's Typedtree
   reporting every construction the native compiler turns into a heap
   allocation.

   Finding kinds:

     CLO  closure construction: a *capturing* lambda (non-capturing
          lambdas are static blocks in native code), partial
          application, lazy blocks, objects, first-class modules
     BOX  a float boxed crossing a call boundary: a freshly computed
          float argument, a bare-float return from an analyzed callee,
          or a float passed at a polymorphic type
     TUP  tuple construction
     REC  record construction (including functional update)
     VAR  non-constant variant / exception construction (incl. ::, Some)
     ARR  non-empty array literal
     REF  a ref cell or bytes buffer that survives (local refs that
          Simplif.eliminate_ref turns into mutable variables are proven
          first and exempted)
     FMT  Printf/Format machinery on the path
     CALL a known-allocating stdlib call (Array.make, String.concat,
          boxed Int64 arithmetic, invalid_arg, ...)

   Every finding is claimable by an "(* alloc: cold — reason *)"
   suppression on the same or the preceding line; the driver reports
   unclaimed suppressions as SUP findings.

   Two compiler behaviours are modelled so the gate can be zero-noise on
   the live tree:

   - [Simplif.eliminate_ref]: [let i = ref e in ...] where [i] only ever
     appears under [!], [:=], [incr] or [decr] compiles to a mutable
     variable with no allocation — the idiom every scan loop in
     Eheap/Twheel/Flowtab is written in.
   - Constant closures: a lambda with no free variables below the module
     level is statically allocated, as are format-string literals
     (constructor chains built at compile time). *)

open Typedtree

type ctx = {
  load : Cmtload.t;
  current : Cmtload.modl;
  file : string;
  supp : Lrp_report.Suppress.t;
  allocating_extra : string list;
  emit : Lrp_report.Finding.t -> unit;  (* called only for unclaimed findings *)
  edge : Cmtload.modl -> Cmtload.func -> unit;
}

let report ctx ~loc ~rule msg =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col = loc.Location.loc_start.pos_cnum - loc.Location.loc_start.pos_bol in
  if not (Lrp_report.Suppress.claim ctx.supp ~tag:"cold" ~line) then
    ctx.emit (Lrp_report.Finding.v ~rule ~file:ctx.file ~line ~col msg)

(* ------------------------------------------------------------------ *)
(* Stdlib call classification                                          *)
(* ------------------------------------------------------------------ *)

let path_comps p =
  let rec go p acc =
    match p with
    | Path.Pident id -> Ident.name id :: acc
    | Path.Pdot (p, s) -> go p (s :: acc)
    | _ -> "?" :: acc
  in
  go p []

(* "Stdlib.Array.make" -> "Array.make"; "Stdlib.ref" -> "ref". *)
let stdlib_name p =
  match path_comps p with
  | "Stdlib" :: rest -> String.concat "." rest
  | comps -> String.concat "." comps

let is_deref_op = function "!" | ":=" | "incr" | "decr" -> true | _ -> false

(* Mutable makers reported as REF: the cell itself is the allocation. *)
let ref_makers = [ "ref"; "Bytes.create"; "Bytes.make" ]

let fmt_prefixes = [ "Printf."; "Format."; "Scanf."; "CamlinternalFormat" ]

let allocating_calls =
  [
    (* error constructors — allocate the exception and its argument *)
    "invalid_arg"; "failwith";
    (* string / bytes *)
    "^"; "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
    "String.lowercase_ascii"; "String.uppercase_ascii"; "String.trim";
    "String.escaped"; "String.of_bytes"; "String.to_bytes";
    "Bytes.sub"; "Bytes.copy"; "Bytes.of_string"; "Bytes.to_string";
    "Bytes.extend"; "Bytes.cat"; "Bytes.init"; "Bytes.sub_string";
    (* arrays *)
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.sub";
    "Array.of_list"; "Array.to_list"; "Array.make_matrix";
    "Array.create_float"; "Array.map"; "Array.mapi"; "Array.to_seq";
    "Array.find_opt";
    (* lists *)
    "@"; "List.map"; "List.mapi"; "List.rev"; "List.append"; "List.concat";
    "List.concat_map"; "List.flatten"; "List.init"; "List.filter";
    "List.filter_map"; "List.sort"; "List.stable_sort"; "List.fast_sort";
    "List.sort_uniq"; "List.split"; "List.combine"; "List.rev_append";
    "List.rev_map"; "List.merge"; "List.cons"; "List.find_opt";
    "List.assoc_opt"; "List.nth_opt"; "List.of_seq"; "List.to_seq";
    (* containers *)
    "Hashtbl.create"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.copy";
    "Hashtbl.find_opt"; "Hashtbl.fold"; "Hashtbl.to_seq";
    "Buffer.create"; "Buffer.contents"; "Buffer.add_string";
    "Buffer.add_char"; "Buffer.add_bytes"; "Buffer.add_subbytes";
    "Buffer.to_bytes";
    "Queue.create"; "Queue.add"; "Queue.push"; "Stack.create"; "Stack.push";
    "Atomic.make";
    (* conversions producing fresh heap blocks *)
    "string_of_int"; "string_of_float"; "string_of_bool"; "float_of_string";
    "Float.to_string"; "Int.to_string"; "Option.some"; "Option.map";
    "Option.bind";
  ]

let boxed_arith_prefixes = [ "Int64."; "Int32."; "Nativeint." ]

(* Boxed-int operations that do NOT produce a boxed result. *)
let boxed_arith_exempt =
  [
    "Int64.to_int"; "Int64.equal"; "Int64.compare"; "Int32.to_int";
    "Int32.equal"; "Int32.compare"; "Nativeint.to_int"; "Nativeint.equal";
    "Nativeint.compare";
  ]

let has_prefix s p =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_tvar ty =
  match Types.get_desc ty with Types.Tvar _ -> true | _ -> false

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* Is this expression's type part of the compile-time-static format
   constructor chain (CamlinternalFormatBasics)? *)
let is_format_typed ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match path_comps p with
      | "CamlinternalFormatBasics" :: _ -> true
      | "Stdlib" :: rest | rest -> (
          match List.rev rest with
          | ("format6" | "format4" | "format") :: _ -> true
          | _ -> false))
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Simplif.eliminate_ref modelling                                     *)
(* ------------------------------------------------------------------ *)

let is_ref_make (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some _) ]) ->
      stdlib_name p = "ref"
  | _ -> false

(* Does [id] appear in [body] only as the direct argument of a deref
   operator?  If so the ref compiles to a mutable variable (no cell). *)
let uses_only_deref body id =
  let ok = ref true in
  let expr sub (e : expression) =
    match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args)
      when is_deref_op (stdlib_name p) ->
        sub.Tast_iterator.expr sub f;
        List.iteri
          (fun i (_, a) ->
            match a with
            | Some { exp_desc = Texp_ident (Path.Pident id', _, _); _ }
              when i = 0 && Ident.same id id' ->
                ()
            | Some a -> sub.Tast_iterator.expr sub a
            | None -> ())
          args
    | Texp_ident (Path.Pident id', _, _) when Ident.same id id' -> ok := false
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it body;
  !ok

(* ------------------------------------------------------------------ *)
(* Free variables of a lambda (capture analysis)                       *)
(* ------------------------------------------------------------------ *)

let free_idents ctx ~self (e : expression) =
  let used = ref [] in
  let bound = ref [] in
  let pat : type k. _ -> k general_pattern -> unit =
   fun sub p ->
    bound := Cmtload.pat_idents p @ !bound;
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> used := id :: !used
    | Texp_for (id, _, _, _, _, _) -> bound := id :: !bound
    | Texp_let (_, vbs, _) ->
        List.iter (fun vb -> bound := Cmtload.pat_idents vb.vb_pat @ !bound) vbs
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr; pat } in
  it.expr it e;
  let global id =
    List.exists (Ident.same id) ctx.current.Cmtload.md_top_ids
    || List.exists (Ident.same id) self
    || List.exists (Ident.same id) !bound
  in
  let frees =
    List.filter (fun id -> not (global id)) !used
    |> List.map Ident.name
    |> List.sort_uniq String.compare
  in
  frees

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let is_fun (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let rec walk ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> maybe_edge ctx p
  | Texp_constant _ -> ()
  | Texp_let (Nonrecursive, vbs, body) ->
      List.iter
        (fun vb ->
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _)
            when is_ref_make vb.vb_expr && uses_only_deref body id -> (
              (* eliminate_ref: mutable variable, no cell — walk only the
                 initial value. *)
              match vb.vb_expr.exp_desc with
              | Texp_apply (_, [ (_, Some init) ]) -> walk ctx init
              | _ -> ())
          | _ -> walk ctx vb.vb_expr)
        vbs;
      walk ctx body
  | Texp_let (Recursive, vbs, body) ->
      let self =
        List.concat_map (fun vb -> Cmtload.pat_idents vb.vb_pat) vbs
      in
      List.iter
        (fun vb ->
          if is_fun vb.vb_expr then lambda ctx ~self vb.vb_expr
          else walk ctx vb.vb_expr)
        vbs;
      walk ctx body
  | Texp_function _ -> lambda ctx ~self:[] e
  | Texp_apply (f, args) -> apply ctx e f args
  | Texp_match (scrut, cases, _) ->
      walk ctx scrut;
      walk_cases ctx cases
  | Texp_try (body, cases) ->
      walk ctx body;
      walk_cases ctx cases
  | Texp_tuple es ->
      report ctx ~loc:e.exp_loc ~rule:"TUP"
        (Printf.sprintf "tuple construction (%d fields)" (List.length es));
      List.iter (walk ctx) es
  | Texp_construct (_, cd, args) ->
      if args = [] then ()
      else if is_format_typed e.exp_type then
        (* format literal: a constructor chain built at compile time *)
        ()
      else begin
        report ctx ~loc:e.exp_loc ~rule:"VAR"
          (Printf.sprintf "constructor %s allocates (%d argument%s)"
             (if cd.Types.cstr_name = "::" then "(::) list cons"
              else cd.Types.cstr_name)
             (List.length args)
             (if List.length args = 1 then "" else "s"));
        List.iter (walk ctx) args
      end
  | Texp_variant (_, None) -> ()
  | Texp_variant (label, Some arg) ->
      report ctx ~loc:e.exp_loc ~rule:"VAR"
        (Printf.sprintf "polymorphic variant `%s allocates" label);
      walk ctx arg
  | Texp_record { fields; extended_expression; _ } ->
      report ctx ~loc:e.exp_loc ~rule:"REC"
        (if extended_expression = None then "record construction"
         else "record construction (functional update copies every field)");
      Option.iter (walk ctx) extended_expression;
      Array.iter
        (fun (_, def) ->
          match def with
          | Overridden (_, e) -> walk ctx e
          | Kept _ -> ())
        fields
  | Texp_field (b, _, _) -> walk ctx b
  | Texp_setfield (b, _, _, v) ->
      walk ctx b;
      walk ctx v
  | Texp_array [] -> ()
  | Texp_array es ->
      report ctx ~loc:e.exp_loc ~rule:"ARR"
        (Printf.sprintf "array literal allocates (%d elements)" (List.length es));
      List.iter (walk ctx) es
  | Texp_ifthenelse (c, t, f) ->
      walk ctx c;
      walk ctx t;
      Option.iter (walk ctx) f
  | Texp_sequence (a, b) ->
      walk ctx a;
      walk ctx b
  | Texp_while (c, body) ->
      walk ctx c;
      walk ctx body
  | Texp_for (_, _, lo, hi, _, body) ->
      walk ctx lo;
      walk ctx hi;
      walk ctx body
  | Texp_send (o, _) -> walk ctx o
  | Texp_new _ ->
      report ctx ~loc:e.exp_loc ~rule:"CLO" "object instantiation allocates"
  | Texp_instvar _ -> ()
  | Texp_setinstvar (_, _, _, v) -> walk ctx v
  | Texp_override (_, fields) ->
      report ctx ~loc:e.exp_loc ~rule:"CLO" "object override allocates";
      List.iter (fun (_, _, e) -> walk ctx e) fields
  | Texp_letmodule (_, _, _, _, body) ->
      report ctx ~loc:e.exp_loc ~rule:"CLO"
        "local module allocates its structure block";
      walk ctx body
  | Texp_letexception (_, body) -> walk ctx body
  | Texp_assert (cond, _) -> walk ctx cond
  | Texp_lazy _ ->
      report ctx ~loc:e.exp_loc ~rule:"CLO" "lazy block allocates"
  | Texp_object _ ->
      report ctx ~loc:e.exp_loc ~rule:"CLO" "object expression allocates"
  | Texp_pack _ ->
      report ctx ~loc:e.exp_loc ~rule:"CLO" "first-class module allocates"
  | Texp_letop { let_; ands; body; _ } ->
      report ctx ~loc:e.exp_loc ~rule:"CLO"
        "binding operator allocates its continuation closure";
      walk ctx let_.bop_exp;
      List.iter (fun a -> walk ctx a.bop_exp) ands;
      walk_cases ctx [ body ]
  | Texp_open (_, body) -> walk ctx body
  | Texp_unreachable | Texp_extension_constructor _ -> ()

and walk_cases : type k. ctx -> k case list -> unit =
 fun ctx cases ->
  List.iter
    (fun c ->
      Option.iter (walk ctx) c.c_guard;
      walk ctx c.c_rhs)
    cases

(* A lambda expression appearing in value position: flag it if it
   captures, then walk the whole curried chain as one closure (OCaml
   compiles [fun a -> fun b -> e] to a single n-ary closure; only
   application sites can split it). *)
and lambda ctx ~self (e : expression) =
  let frees = free_idents ctx ~self e in
  if frees <> [] then
    report ctx ~loc:e.exp_loc ~rule:"CLO"
      (Printf.sprintf "capturing closure (captures %s)"
         (String.concat ", " frees));
  chain ctx e

and chain ctx (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when is_fun c.c_rhs ->
      Option.iter (walk ctx) c.c_guard;
      chain ctx c.c_rhs
  | Texp_function { cases; _ } -> walk_cases ctx cases
  | _ -> walk ctx e

and maybe_edge ctx p =
  match Cmtload.resolve_path ctx.load ~current:ctx.current p with
  | Some (m, fn) -> (
      match fn.Cmtload.fn_expr.exp_desc with
      | Texp_function _ | Texp_ident _ -> ctx.edge m fn
      | _ -> ())
  | None -> ()

and apply ctx (e : expression) f args =
  (match f.exp_desc with
  | Texp_ident (p, _, _) -> (
      let name = stdlib_name p in
      if is_deref_op name then ()
      else if name = "ref" then
        report ctx ~loc:e.exp_loc ~rule:"REF"
          "ref cell allocated (escapes its binding, so eliminate_ref \
           cannot remove it)"
      else if List.mem name ref_makers then
        report ctx ~loc:e.exp_loc ~rule:"REF"
          (Printf.sprintf "%s allocates a fresh buffer" name)
      else if List.exists (has_prefix name) fmt_prefixes then
        report ctx ~loc:e.exp_loc ~rule:"FMT"
          (Printf.sprintf "%s runs the format interpreter (allocates)" name)
      else if
        List.exists (has_prefix name) boxed_arith_prefixes
        && not (List.mem name boxed_arith_exempt)
      then
        report ctx ~loc:e.exp_loc ~rule:"CALL"
          (Printf.sprintf "%s returns a boxed result" name)
      else if
        List.mem name allocating_calls || List.mem name ctx.allocating_extra
      then
        report ctx ~loc:e.exp_loc ~rule:"CALL"
          (Printf.sprintf "%s allocates" name)
      else if
        (name = "min" || name = "max" || name = "abs_float"
        || name = "Float.min" || name = "Float.max" || name = "Float.abs")
        && is_float e.exp_type
      then
        report ctx ~loc:e.exp_loc ~rule:"BOX"
          (Printf.sprintf "%s boxes its float result" name)
      else
        match Cmtload.resolve_path ctx.load ~current:ctx.current p with
        | Some (m, fn) -> float_box_checks ctx e f args m fn
        | None -> ());
      partial_check ctx e f args
  | _ -> partial_check ctx e f args);
  walk ctx f;
  List.iter (fun (_, a) -> Option.iter (walk ctx) a) args

(* Partial application: the apply leaves an arrow behind AND supplied
   fewer arguments than the callee actually takes.  The arity has to be
   the callee's *real* arity, not the length of its arrow type:
   [Array.unsafe_get dispatchers d] and [Obj.magic f] have arrow-typed
   results while being fully saturated — fetching or casting a function
   value is not a closure allocation.  Accessor arities are tabulated;
   resolved callees are measured on their typedtree (which also makes
   [let clock t = fun () -> ...] a 2-ary function whose 1-argument call
   sites allocate, exactly as the compiler compiles it).  (Omitted
   optional arguments of a saturated call appear as [(l, None)] entries
   and so count as supplied, which is right: the compiler fills them
   with the immediate [None].) *)
and partial_check ctx (e : expression) f args =
  if is_arrow e.exp_type then begin
    let arity =
      match f.exp_desc with
      | Texp_ident (p, _, _) -> (
          let name = stdlib_name p in
          match
            List.assoc_opt name
              [
                ("Obj.magic", 1); ("Obj.repr", 1); ("Obj.obj", 1);
                ("Fun.id", 1); ("!", 1); ("Option.get", 1);
                ("Array.get", 2); ("Array.unsafe_get", 2);
                ("Bytes.get", 2); ("Bytes.unsafe_get", 2);
                ("Hashtbl.find", 2);
              ]
          with
          | Some a -> a
          | None -> (
              match Cmtload.resolve_path ctx.load ~current:ctx.current p with
              | Some (_, fn) ->
                  let a = chain_arity fn.Cmtload.fn_expr in
                  if a = 0 then List.length (arrows f.exp_type) else a
              | None -> List.length (arrows f.exp_type)))
      | _ -> List.length (arrows f.exp_type)
    in
    if List.length args < arity then
      report ctx ~loc:e.exp_loc ~rule:"CLO"
        "partial application allocates a closure"
  end

and chain_arity (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when is_fun c.c_rhs ->
      1 + chain_arity c.c_rhs
  | Texp_function _ -> 1
  | _ -> 0

(* Float-boxing at a call into the analyzed set: freshly computed float
   arguments box at the boundary (already-boxed floats — constants,
   variables — are passed as-is), a bare-float return boxes in the
   callee, and a float passed at a polymorphic type is always boxed. *)
and float_box_checks ctx (e : expression) f args m fn =
  let callee =
    Cmtload.short_of m.Cmtload.md_key ^ "." ^ fn.Cmtload.fn_name
  in
  if is_float e.exp_type then
    report ctx ~loc:e.exp_loc ~rule:"BOX"
      (Printf.sprintf
         "call to %s returns a bare float (boxed in the callee); use a \
          float-cell/_into variant"
         callee);
  (* walk the callee's arrow type alongside the supplied arguments *)
  let formals = ref (arrows f.exp_type) in
  List.iter
    (fun (label, a) ->
      match a with
      | None -> ()
      | Some a -> (
          let formal =
            match
              List.partition (fun (l, _) -> l = label) !formals
            with
            | (_, ty) :: rest_same, others ->
                formals := rest_same @ others;
                Some ty
            | [], _ -> None
          in
          match formal with
          | Some fty when is_tvar fty && is_float a.exp_type ->
              report ctx ~loc:a.exp_loc ~rule:"BOX"
                (Printf.sprintf
                   "float passed at a polymorphic type to %s is boxed" callee)
          | _ ->
              if is_float a.exp_type then
                match a.exp_desc with
                | Texp_apply _ | Texp_field _ | Texp_ifthenelse _ ->
                    report ctx ~loc:a.exp_loc ~rule:"BOX"
                      (Printf.sprintf
                         "float argument to %s is freshly boxed at this \
                          call; stage it through a float-array cell"
                         callee)
                | _ -> ()))
    args

and arrows ty =
  match Types.get_desc ty with
  | Types.Tarrow (l, a, b, _) -> (l, a) :: arrows b
  | _ -> []

(* Analyze one top-level binding: the outermost curried chain is the
   function itself (statically allocated, built once at module init),
   everything inside is hot-path territory. *)
let analyze ctx (fn : Cmtload.func) =
  match fn.Cmtload.fn_expr.exp_desc with
  | Texp_function _ -> chain ctx fn.Cmtload.fn_expr
  | _ -> walk ctx fn.Cmtload.fn_expr
