(* The lrp_allocheck driver: load .cmt files, walk the configured hot
   paths for allocations, walk the cell-resident directories for escapes,
   then sweep for stale suppressions.

   The allocation pass is a breadth-first closure over the call graph:
   configured entry points seed a work queue, and every resolved
   reference to a function inside [follow_dirs] is enqueued (once).
   Calls that leave the followed directories, and functions listed under
   [assume], are boundaries — their cost is their own contract.

   The escape pass is not reachability-based (see escape.ml): every
   top-level function in [escape_dirs] is checked.

   An entry that fails to resolve is itself a finding (rule CFG) — a
   renamed hot path must not silently drop out of the gate. *)

let marker = "(* alloc:"
let known_tags = [ "cold"; "escape-ok" ]

type stats = {
  cmt_files : int;
  funcs_analyzed : int;  (* allocation pass, entries + transitive *)
  escape_funcs : int;  (* escape pass *)
  files_scanned : int;  (* distinct source files swept for suppressions *)
}

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Some text
  | exception Sys_error _ -> None

(* The two spellings a conf file may use for one function. *)
let canon_names (m : Cmtload.modl) (fn : Cmtload.func) =
  let short = Cmtload.short_of m.md_key in
  let full = m.md_key ^ "." ^ fn.fn_name in
  if short = m.md_key then [ full ] else [ short ^ "." ^ fn.fn_name; full ]

let listed names set = List.exists (fun n -> List.mem n set) names

let run ~root ?(conf_name = "allocheck.conf") (cfg : Aconfig.t) :
    Lrp_report.Finding.t list * stats =
  let load = Cmtload.load ~root cfg.cmt_dirs in
  let findings = ref [] in
  let emit f = findings := f :: !findings in

  (* Per-file suppression tables, filled lazily as the walks reach
     files; every file touched is swept for unused entries at the end. *)
  let supps : (string, Lrp_report.Suppress.t) Hashtbl.t = Hashtbl.create 32 in
  let supp_for file =
    match Hashtbl.find_opt supps file with
    | Some s -> s
    | None ->
        let text =
          match read_file (Filename.concat root file) with
          | Some t -> t
          | None -> ( match read_file file with Some t -> t | None -> "")
        in
        let s = Lrp_report.Suppress.scan ~marker ~known:known_tags text in
        Hashtbl.replace supps file s;
        s
  in

  (* --- allocation pass ------------------------------------------- *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue : (Cmtload.modl * Cmtload.func) Queue.t = Queue.create () in
  let enqueue (m : Cmtload.modl) (fn : Cmtload.func) =
    let key = m.md_key ^ "." ^ fn.fn_name in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      Queue.add (m, fn) queue
    end
  in
  List.iter
    (fun entry ->
      match Cmtload.resolve_name load entry with
      | Some (m, fn) -> enqueue m fn
      | None ->
          emit
            (Lrp_report.Finding.v ~rule:"CFG" ~file:conf_name ~line:0 ~col:0
               (Printf.sprintf
                  "entry '%s' does not resolve to a loaded binding (not \
                   built, renamed, or misspelled?)"
                  entry)))
    cfg.entries;
  let funcs_analyzed = ref 0 in
  while not (Queue.is_empty queue) do
    let m, fn = Queue.pop queue in
    if not (listed (canon_names m fn) cfg.assume) then begin
      incr funcs_analyzed;
      let ctx =
        {
          Allocwalk.load;
          current = m;
          file = m.md_source;
          supp = supp_for m.md_source;
          allocating_extra = cfg.allocating_extra;
          emit;
          edge =
            (fun m' fn' ->
              if Lrp_report.Pathspec.in_dirs m'.Cmtload.md_source cfg.follow_dirs
              then enqueue m' fn');
        }
      in
      Allocwalk.analyze ctx fn
    end
  done;

  (* --- escape pass ------------------------------------------------ *)
  let escape_funcs = ref 0 in
  let escape_mods =
    Lrp_det.Det.bindings load.mods
    |> List.filter_map (fun (_, (m : Cmtload.modl)) ->
           if Lrp_report.Pathspec.in_dirs m.md_source cfg.escape_dirs then
             Some m
           else None)
  in
  List.iter
    (fun (m : Cmtload.modl) ->
      List.iter
        (fun (fn : Cmtload.func) ->
          incr escape_funcs;
          let ctx =
            {
              Escape.top_ids = m.md_top_ids;
              cross_fields = cfg.cross_cell_fields;
              sanctioned = listed (canon_names m fn) cfg.escape_sanctions;
              file = m.md_source;
              supp = supp_for m.md_source;
              emit;
            }
          in
          Escape.check_fn ctx fn)
        m.md_funcs)
    escape_mods;

  (* --- stale suppressions ----------------------------------------- *)
  Lrp_det.Det.iter_sorted
    (fun file s -> List.iter emit (Lrp_report.Suppress.unused s ~what:"alloc" ~file))
    supps;

  ( Lrp_report.Finding.sort !findings,
    {
      cmt_files = load.cmt_files;
      funcs_analyzed = !funcs_analyzed;
      escape_funcs = !escape_funcs;
      files_scanned = Hashtbl.length supps;
    } )
