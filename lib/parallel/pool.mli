(** Work-stealing-free domain pool for embarrassingly parallel sweeps.

    The experiment harnesses run many mutually independent simulations
    (one engine each); this pool fans them out over OCaml 5 domains.  It is
    dependency-free: plain [Domain], [Mutex] and [Condition].

    Determinism contract: [map] returns results in submission order, and
    jobs receive no information about which domain ran them — so a job
    whose output is a deterministic function of its input (e.g. a
    simulation run from its own seeded engine) produces identical results
    whatever the pool size.  [create ~domains:1] runs every job inline in
    the caller, byte-for-byte the sequential behavior. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains:n ()] starts a pool of [n] worker domains (default
    {!Domain.recommended_domain_count}).  [n <= 1] means no worker domains:
    jobs run inline in the submitting domain. *)

val domains : t -> int
(** Parallelism of the pool ([>= 1]; [1] means inline execution). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, distributing the calls
    over the pool's domains, and returns the results in the order of [xs].
    The submitting domain participates in the work.  If any call raises,
    the first exception (by completion time) is re-raised in the caller
    after all in-flight jobs settle; remaining unstarted jobs are skipped.
    Not re-entrant: do not call [map] from inside a job. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c ->
  'a list -> 'c
(** [map_reduce pool ~map ~reduce ~init xs] folds [reduce] left-to-right
    in submission order over the mapped results — deterministic even for
    non-commutative [reduce]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  The pool must be idle
    (no [map] in progress). *)

val with_pool : ?domains:int -> (t -> 'r) -> 'r
(** [with_pool ~domains f] brackets [create] / [shutdown] around [f]. *)
