(** Work-stealing-free domain pool for embarrassingly parallel sweeps.

    The experiment harnesses run many mutually independent simulations
    (one engine each); this pool fans them out over OCaml 5 domains.  It is
    dependency-free: plain [Domain], [Mutex] and [Condition].

    Determinism contract: [map] returns results in submission order, and
    jobs receive no information about which domain ran them — so a job
    whose output is a deterministic function of its input (e.g. a
    simulation run from its own seeded engine) produces identical results
    whatever the pool size.  [create ~domains:1] runs every job inline in
    the caller, byte-for-byte the sequential behavior. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains:n ()] makes a pool capped at [n]-way parallelism
    (default {!Domain.recommended_domain_count}).  [n <= 1] means no worker
    domains: jobs run inline in the submitting domain.

    Worker domains are a process-wide shared set, spawned on demand and
    parked between batches — creating pools repeatedly (one per sweep)
    reuses the same domains instead of respawning them, so short sweeps no
    longer pay spawn cost per batch.  [create] only grows the shared set
    when the cap asks for more workers than have ever been spawned. *)

val domains : t -> int
(** Parallelism of the pool ([>= 1]; [1] means inline execution). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, distributing the calls
    over the pool's domains, and returns the results in the order of [xs].
    The submitting domain participates in the work.  If any call raises,
    the first exception (by completion time) is re-raised in the caller
    after all in-flight jobs settle; remaining unstarted jobs are skipped.
    Not re-entrant: do not call [map] from inside a job. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c ->
  'a list -> 'c
(** [map_reduce pool ~map ~reduce ~init xs] folds [reduce] left-to-right
    in submission order over the mapped results — deterministic even for
    non-commutative [reduce]. *)

val shutdown : t -> unit
(** A no-op, kept for API compatibility: workers are shared across pools
    and parked between batches, not owned by any one pool.  The shared set
    is joined by an [at_exit] hook. *)

val with_pool : ?domains:int -> (t -> 'r) -> 'r
(** [with_pool ~domains f] brackets [create] / [shutdown] around [f]. *)

(** {2 Shared worker set}

    Plumbing for long-lived cooperators such as {!Team}: raw access to the
    process-wide worker set that [map] schedules onto. *)

val submit : (unit -> unit) -> unit
(** Enqueue a raw job on the shared worker set.  The job runs on some
    worker domain (never inline); callers are responsible for making
    enough workers free — see {!reserve_workers}. *)

val ensure_free : int -> unit
(** Grow the shared set until at least [n] workers are unreserved. *)

val reserve_workers : int -> unit
(** Pin [n] workers for long-running jobs (e.g. team members that park in
    a barrier for a whole run): grows the set so transient [map] batches
    keep their parallelism, and accounts the [n] as unavailable until
    {!release_workers}. *)

val release_workers : int -> unit

val spawned_domains : unit -> int
(** Worker domains alive in the shared set (never shrinks) — observable
    evidence that pools reuse domains instead of respawning them. *)
