(** Reusable domain team with an epoch barrier.

    Built on {!Pool}'s shared worker set: [create ~size] parks [size - 1]
    member loops on reserved pool workers; each {!run} is one epoch — all
    members (the caller participates as member 0) execute the given
    function with their member index, and [run] returns only when every
    member has checked in.  Epochs cost one broadcast plus one completion
    wait, with no per-epoch queueing or allocation beyond the caller's
    closure — the synchronization backbone for conservative-lookahead
    sharded simulation ({!Lrp_engine.Shardsim}), which runs thousands of
    epochs against one member set.

    Determinism: member [i] always receives index [i]; which OS thread
    backs a member is invisible to the work function. *)

type t

val create : size:int -> t
(** A team of [max 1 size] members.  [size <= 1] teams run everything
    inline in the caller. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** One epoch: every member [0 .. size-1] runs the function with its own
    index; returns when all have finished.  If any member raises, the
    first exception (by completion time) is re-raised in the caller after
    the barrier.  Not re-entrant. *)

val shutdown : t -> unit
(** Dissolve the team: member loops return to the parked pool and their
    reservations are released.  Idempotent.  Must not race a {!run}. *)
