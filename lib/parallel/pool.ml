(* One process-wide set of parked worker domains, shared by every pool
   (and by Team's epoch barriers).  Spawning a domain costs hundreds of
   microseconds plus a minor heap, so the old design — each [with_pool]
   bracket spawning and joining its own workers — made short sweeps pay
   the spawn bill per batch.  Workers are now spawned on demand, never
   torn down, and parked in [Condition.wait] between batches; a [Pool.t]
   is just a parallelism cap over the shared set.

   lib/parallel is the one sanctioned home for cross-domain module state
   (the lint C2 rule keeps lib/engine and lib/net free of it): everything
   below is either immutable, accessed under [shared.lock], or an atomic
   job cursor.  Determinism is untouched — jobs still receive no
   information about which domain ran them, and [map] still returns
   results by submission index. *)

type shared = {
  lock : Mutex.t;
  work_ready : Condition.t;      (* job queued, or process shutdown *)
  jobs : (unit -> unit) Queue.t;
  mutable spawned : int;         (* worker domains alive *)
  mutable reserved : int;        (* workers pinned by long-running jobs *)
  mutable handles : unit Domain.t list;
  mutable quit : bool;           (* set once, by the at_exit hook *)
}

let shared =
  { lock = Mutex.create (); work_ready = Condition.create ();
    jobs = Queue.create (); spawned = 0; reserved = 0; handles = [];
    quit = false }

let worker_loop () =
  let rec next () =
    Mutex.lock shared.lock;
    while Queue.is_empty shared.jobs && not shared.quit do
      Condition.wait shared.work_ready shared.lock
    done;
    if Queue.is_empty shared.jobs then Mutex.unlock shared.lock (* quit *)
    else begin
      let job = Queue.pop shared.jobs in
      Mutex.unlock shared.lock;
      job ();
      next ()
    end
  in
  next ()

(* Park the workers and join them before the runtime shuts down, so the
   process never exits with domains mid-wait. *)
let () =
  at_exit (fun () ->
      Mutex.lock shared.lock;
      shared.quit <- true;
      Condition.broadcast shared.work_ready;
      let hs = shared.handles in
      shared.handles <- [];
      Mutex.unlock shared.lock;
      List.iter Domain.join hs)

(* Grow the shared set until [n] workers are free of long-running
   reservations.  Spawn outside the lock: the counter is bumped first, so
   concurrent callers cannot double-spawn the same slot. *)
let ensure_free n =
  if n > 0 then begin
    Mutex.lock shared.lock;
    let missing = (shared.reserved + n) - shared.spawned in
    let missing = if shared.quit then 0 else max 0 missing in
    shared.spawned <- shared.spawned + missing;
    Mutex.unlock shared.lock;
    if missing > 0 then begin
      let hs = List.init missing (fun _ -> Domain.spawn worker_loop) in
      Mutex.lock shared.lock;
      shared.handles <- hs @ shared.handles;
      Mutex.unlock shared.lock
    end
  end

let submit job =
  Mutex.lock shared.lock;
  Queue.add job shared.jobs;
  Condition.signal shared.work_ready;
  Mutex.unlock shared.lock

let reserve_workers n =
  if n > 0 then begin
    ensure_free n;
    Mutex.lock shared.lock;
    shared.reserved <- shared.reserved + n;
    Mutex.unlock shared.lock
  end

let release_workers n =
  if n > 0 then begin
    Mutex.lock shared.lock;
    shared.reserved <- max 0 (shared.reserved - n);
    Mutex.unlock shared.lock
  end

let spawned_domains () =
  Mutex.lock shared.lock;
  let n = shared.spawned in
  Mutex.unlock shared.lock;
  n

(* --- the per-sweep view ------------------------------------------------ *)

type t = { n_domains : int }

let create ?domains () =
  let n =
    match domains with
    | Some n -> max 1 n
    | None -> Domain.recommended_domain_count ()
  in
  (* Warm the shared set now so the first [map] doesn't pay spawn cost. *)
  ensure_free (n - 1);
  { n_domains = n }

let domains t = t.n_domains

(* Workers are shared and persistent; a pool owns nothing to tear down.
   Kept for API compatibility with the spawn-per-pool implementation. *)
let shutdown _ = ()

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.n_domains = 1 -> List.map f xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let error = Atomic.make None in
      let cursor = Atomic.make 0 in
      let batch_lock = Mutex.create () in
      let batch_done = Condition.create () in
      let remaining = ref n in
      (* Runner task: claim job indices from the shared cursor until the
         batch is drained.  Results land by index, so completion order
         cannot leak into the output.  A runner popped by a worker after
         the batch already finished claims an out-of-range index and
         returns immediately. *)
      let rec runner () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (if Atomic.get error = None then
             match f arr.(i) with
             | v -> results.(i) <- Some v
             | exception e ->
                 let bt = Printexc.get_raw_backtrace () in
                 ignore (Atomic.compare_and_set error None (Some (e, bt))));
          Mutex.lock batch_lock;
          decr remaining;
          if !remaining = 0 then Condition.broadcast batch_done;
          Mutex.unlock batch_lock;
          runner ()
        end
      in
      let helpers = min (t.n_domains - 1) (n - 1) in
      ensure_free helpers;
      Mutex.lock shared.lock;
      for _ = 1 to helpers do
        Queue.add runner shared.jobs
      done;
      Condition.broadcast shared.work_ready;
      Mutex.unlock shared.lock;
      (* The caller is a runner too, then waits out helper stragglers. *)
      runner ();
      Mutex.lock batch_lock;
      while !remaining > 0 do
        Condition.wait batch_done batch_lock
      done;
      Mutex.unlock batch_lock;
      (match Atomic.get error with
       | Some (e, bt) -> Printexc.raise_with_backtrace e bt
       | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let map_reduce t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map t f xs)
