type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;       (* new job queued, or shutdown *)
  batch_done : Condition.t;       (* a batch's last job completed *)
  jobs : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  n_domains : int;
}

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.closed do
      Condition.wait t.work_ready t.mutex
    done;
    if Queue.is_empty t.jobs then Mutex.unlock t.mutex (* closed *)
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      job ();
      next ()
    end
  in
  next ()

let create ?domains () =
  let n =
    match domains with
    | Some n -> max 1 n
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    { mutex = Mutex.create (); work_ready = Condition.create ();
      batch_done = Condition.create (); jobs = Queue.create ();
      closed = false; workers = []; n_domains = n }
  in
  (* The caller participates in every [map], so n-1 standing workers give
     n-way parallelism. *)
  if n > 1 then
    t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.n_domains

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.n_domains = 1 -> List.map f xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let error = Atomic.make None in
      let remaining = ref n in
      (* One job per element.  Each job stores its result by index, so
         completion order cannot leak into the output. *)
      let job i () =
        (if Atomic.get error = None then
           match f arr.(i) with
           | v -> results.(i) <- Some v
           | exception e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set error None (Some (e, bt))));
        Mutex.lock t.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast t.batch_done;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (job i) t.jobs
      done;
      Condition.broadcast t.work_ready;
      (* The caller drains jobs too, then waits out the stragglers running
         on worker domains. *)
      let rec drain () =
        if not (Queue.is_empty t.jobs) then begin
          let job = Queue.pop t.jobs in
          Mutex.unlock t.mutex;
          job ();
          Mutex.lock t.mutex;
          drain ()
        end
      in
      drain ();
      while !remaining > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex;
      (match Atomic.get error with
       | Some (e, bt) -> Printexc.raise_with_backtrace e bt
       | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let map_reduce t ~map:f ~reduce ~init xs =
  List.fold_left reduce init (map t f xs)
