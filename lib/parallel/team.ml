(* Reusable domain team with an epoch barrier, built on Pool's shared
   worker set.

   Pool.map is shaped for one-shot batches: per-batch queueing, one job
   per element.  A sharded simulation (Shardsim) instead runs *thousands*
   of tiny epochs against the same member set — each epoch every member
   advances its shard to a common bound, then all meet at a barrier.  A
   Team keeps its members parked on worker domains between epochs, so an
   epoch costs one broadcast and one completion wait instead of per-job
   queue traffic.

   Members are pinned pool workers: [create] reserves size-1 workers from
   the shared set (growing it if needed) and parks a member loop on each;
   [shutdown] releases them back to the pool.  The caller is member 0 of
   every [run], so a team of [size] gives [size]-way parallelism. *)

type t = {
  size : int;
  lock : Mutex.t;
  go : Condition.t;        (* a new epoch was published *)
  finished : Condition.t;  (* the epoch's last member completed *)
  mutable fn : int -> unit;
  mutable epoch : int;
  mutable pending : int;   (* members still working this epoch *)
  mutable stopped : bool;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

let nop _ = ()

let record_error t ex bt =
  Mutex.lock t.lock;
  (match t.error with None -> t.error <- Some (ex, bt) | Some _ -> ());
  Mutex.unlock t.lock

(* Parked on a pool worker for the team's lifetime: wake on [go], run the
   epoch's function with this member's index, check in, park again. *)
let member t idx =
  let rec loop last =
    Mutex.lock t.lock;
    while t.epoch = last && not t.stopped do
      Condition.wait t.go t.lock
    done;
    if t.stopped then Mutex.unlock t.lock (* back to the pool *)
    else begin
      let e = t.epoch in
      let fn = t.fn in
      Mutex.unlock t.lock;
      (try fn idx
       with ex -> record_error t ex (Printexc.get_raw_backtrace ()));
      Mutex.lock t.lock;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      loop e
    end
  in
  loop 0

let create ~size =
  let size = max 1 size in
  let t =
    { size; lock = Mutex.create (); go = Condition.create ();
      finished = Condition.create (); fn = nop; epoch = 0; pending = 0;
      stopped = false; error = None }
  in
  if size > 1 then begin
    Pool.reserve_workers (size - 1);
    for i = 1 to size - 1 do
      Pool.submit (fun () -> member t i)
    done
  end;
  t

let size t = t.size

let run t f =
  if t.stopped then invalid_arg "Team.run: team is shut down";
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.lock;
    t.fn <- f;
    t.error <- None;
    t.pending <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.go;
    Mutex.unlock t.lock;
    (try f 0 with ex -> record_error t ex (Printexc.get_raw_backtrace ()));
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.finished t.lock
    done;
    t.fn <- nop;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.lock;
    match err with
    | Some (ex, bt) -> Printexc.raise_with_backtrace ex bt
    | None -> ()
  end

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.lock;
    t.stopped <- true;
    Condition.broadcast t.go;
    Mutex.unlock t.lock;
    if t.size > 1 then Pool.release_workers (t.size - 1)
  end
