(* A typed analyzer finding: rule id, position, human message.  Shared by
   lrp_lint (Parsetree source rules) and lrp_allocheck (Typedtree
   allocation/escape rules) so the two tools emit one format and one
   report grammar.  Findings are value types so drivers can sort and diff
   them; ordering is (file, line, col, rule, msg) so output is
   reproducible whatever order files were scanned in — the analyzers hold
   themselves to the determinism rules they enforce. *)

type t = { rule : string; file : string; line : int; col : int; msg : string }

let v ~rule ~file ~line ~col msg = { rule; file; line; col; msg }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let sort fs = List.sort order fs

let to_text f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

(* Hand-rolled JSON, matching the repo's no-yojson ethos (lib/trace/json.ml
   is above this library in the layer DAG, so the few lines are inlined). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_buf buf fs =
  Buffer.add_string buf "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"col\": %d, \"msg\": \"%s\"}"
           (json_escape f.rule) (json_escape f.file) f.line f.col
           (json_escape f.msg)))
    fs;
  Buffer.add_string buf
    (Printf.sprintf "\n  ],\n  \"count\": %d\n}\n" (List.length fs))

let to_json fs =
  let buf = Buffer.create 1024 in
  to_json_buf buf fs;
  Buffer.contents buf
