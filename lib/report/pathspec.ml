(* Path matching for analyzer configuration, shared by lrp_lint and
   lrp_allocheck.

   Paths are matched by suffix after '/'-normalisation ("lib/core/det.ml"
   matches "../lib/core/det.ml" and "/abs/repo/lib/core/det.ml"), and
   scopes by path *component* ("lib" matches any file with a "lib"
   directory component), so an analyzer gives identical answers whether
   it is run from the repo root, from _build, or on absolute paths. *)

(* '/'-normalise a path (Windows-proof and cheap). *)
let normalize p = String.map (fun c -> if c = '\\' then '/' else c) p

let has_suffix_path file entry =
  let file = normalize file and entry = normalize entry in
  file = entry
  || String.length file > String.length entry
     && String.sub file (String.length file - String.length entry - 1)
          (String.length entry + 1)
        = "/" ^ entry

let in_files file entries = List.exists (has_suffix_path file) entries

let in_scope file scopes =
  let parts = String.split_on_char '/' (normalize file) in
  List.exists (fun s -> List.mem s parts) scopes

(* Directory matching for scoped rules: "lib/net" matches
   "lib/net/nic.ml" and "/abs/repo/lib/net/nic.ml", but not
   "otherlib/network/x.ml" — the entry must appear as a consecutive
   run of path components. *)
let in_dirs file entries =
  let file = normalize file in
  let lf = String.length file in
  let matches entry =
    let d = normalize entry ^ "/" in
    let ld = String.length d in
    let rec at i =
      if i + ld > lf then false
      else if (i = 0 || file.[i - 1] = '/') && String.sub file i ld = d then
        true
      else at (i + 1)
    in
    at 0
  in
  List.exists matches entries
