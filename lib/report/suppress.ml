(* In-source suppression comments, shared by the analyzers.

   Syntax: a comment of the form

     (* <marker-word>: <tag> — <reason> *)

   e.g. a "lint:" comment tagged [unordered-ok] for lrp_lint or an
   "alloc:" comment tagged [cold] for lrp_allocheck.  The comment
   suppresses a matching finding on the same line or on the line
   immediately after it (so it can sit above the offending binding or
   trail the expression).  A suppression that suppresses nothing is
   itself a finding (rule SUP): stale exemptions must not accumulate.

   Each analyzer supplies its own marker (the literal comment opener,
   e.g. "(* lint:"), its known tag set, and its rule-to-tag mapping; the
   scanning, claiming and unused-sweep mechanics live here so the two
   tools cannot drift apart. *)

type entry = { tag : string; line : int; mutable used : bool }

type t = entry list

(* Scan raw source text for suppression comments.  A plain substring scan
   is enough here: the marker inside a string literal would be a strange
   thing to write, and the worst case is an unused-suppression finding
   pointing at it. *)
let scan ~marker ~known text : t =
  let n = String.length text in
  let entries = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let starts_with at s =
    at + String.length s <= n && String.sub text at (String.length s) = s
  in
  while !i < n do
    (match text.[!i] with
    | '\n' -> incr line
    | '(' when starts_with !i marker ->
        let j = ref (!i + String.length marker) in
        while !j < n && text.[!j] = ' ' do
          incr j
        done;
        let start = !j in
        while
          !j < n && text.[!j] <> ' ' && text.[!j] <> '\n' && text.[!j] <> '*'
        do
          incr j
        done;
        let tag = String.sub text start (!j - start) in
        if List.mem tag known then
          entries := { tag; line = !line; used = false } :: !entries
    | _ -> ());
    incr i
  done;
  List.rev !entries

(* [claim t ~tag ~line] returns true (and burns the suppression) when a
   matching tag covers [line].  Several findings on the covered lines may
   claim the same entry — one comment exempts the whole expression.  A
   same-line suppression wins over one on the preceding line, so a run of
   consecutive annotated lines claims one comment each instead of the
   first comment absorbing its neighbour's finding. *)
let claim t ~tag ~line =
  let hit =
    match List.find_opt (fun e -> e.tag = tag && e.line = line) t with
    | Some _ as h -> h
    | None -> List.find_opt (fun e -> e.tag = tag && e.line = line - 1) t
  in
  match hit with
  | Some e ->
      e.used <- true;
      true
  | None -> false

let unused t ~what ~file =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (Finding.v ~rule:"SUP" ~file ~line:e.line ~col:0
             (Printf.sprintf
                "unused %s suppression '%s': nothing on this or the next \
                 line needs it"
                what e.tag)))
    t
