(* In-source lint suppressions.

   Syntax: a comment of the form

     (* lint: <tag> — <reason> *)

   where <tag> is one of the known tags below.  The comment suppresses a
   matching finding on the same line or on the line immediately after it
   (so it can sit above the offending binding or trail the expression).
   A suppression that suppresses nothing is itself a finding (rule SUP):
   stale exemptions must not accumulate. *)

type entry = { tag : string; line : int; mutable used : bool }

type t = entry list

let known_tags =
  [ "domain-local"; "unordered-ok"; "stdout-ok"; "wallclock-ok"; "shared-ok" ]

(* Tag a rule id to the suppression tag that can silence it. *)
let tag_for_rule = function
  | "C1" -> Some "domain-local"
  | "C2" -> Some "shared-ok"
  | "D2" -> Some "unordered-ok"
  | "P1" -> Some "stdout-ok"
  | "D1" -> Some "wallclock-ok"
  | _ -> None

(* Scan raw source text for suppression comments.  A plain substring scan
   is enough here: "(* lint:" inside a string literal would be a strange
   thing to write, and the worst case is an unused-suppression finding
   pointing at it. *)
let scan text : t =
  let n = String.length text in
  let entries = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let starts_with at s =
    at + String.length s <= n && String.sub text at (String.length s) = s
  in
  while !i < n do
    (match text.[!i] with
    | '\n' -> incr line
    | '(' when starts_with !i "(* lint:" ->
        let j = ref (!i + String.length "(* lint:") in
        while !j < n && text.[!j] = ' ' do
          incr j
        done;
        let start = !j in
        while
          !j < n && text.[!j] <> ' ' && text.[!j] <> '\n' && text.[!j] <> '*'
        do
          incr j
        done;
        let tag = String.sub text start (!j - start) in
        if List.mem tag known_tags then
          entries := { tag; line = !line; used = false } :: !entries
    | _ -> ());
    incr i
  done;
  List.rev !entries

(* [claim t ~rule ~line] returns true (and burns the suppression) when a
   matching tag covers [line]. *)
let claim t ~rule ~line =
  match tag_for_rule rule with
  | None -> false
  | Some tag ->
      let matching e =
        e.tag = tag && (e.line = line || e.line = line - 1)
      in
      (match List.find_opt matching t with
      | Some e ->
          e.used <- true;
          true
      | None -> false)

let unused t ~file =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (Finding.v ~rule:"SUP" ~file ~line:e.line ~col:0
             (Printf.sprintf
                "unused lint suppression '%s': nothing on this or the next \
                 line needs it"
                e.tag)))
    t
