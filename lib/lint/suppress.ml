(* Lint-facing view of the shared suppression scanner
   (Lrp_report.Suppress): the "(* lint:" marker, the lint tag set, and
   the rule-id -> tag mapping.  The scanning / claiming / unused-sweep
   mechanics are shared with lrp_allocheck's "(* alloc:" grammar. *)

type entry = Lrp_report.Suppress.entry = {
  tag : string;
  line : int;
  mutable used : bool;
}

type t = Lrp_report.Suppress.t

let marker = "(* lint:"

let known_tags =
  [ "domain-local"; "unordered-ok"; "stdout-ok"; "wallclock-ok"; "shared-ok" ]

(* Tag a rule id to the suppression tag that can silence it. *)
let tag_for_rule = function
  | "C1" -> Some "domain-local"
  | "C2" -> Some "shared-ok"
  | "D2" -> Some "unordered-ok"
  | "P1" -> Some "stdout-ok"
  | "D1" -> Some "wallclock-ok"
  | _ -> None

let scan text : t = Lrp_report.Suppress.scan ~marker ~known:known_tags text

(* [claim t ~rule ~line] returns true (and burns the suppression) when a
   matching tag covers [line]. *)
let claim t ~rule ~line =
  match tag_for_rule rule with
  | None -> false
  | Some tag -> Lrp_report.Suppress.claim t ~tag ~line

let unused t ~file = Lrp_report.Suppress.unused t ~what:"lint" ~file
