(* A minimal reader for the `dune` files the linter needs: enough
   s-expression structure to pull (library|executable|executables|test)
   stanzas with their (name ...) and (libraries ...) fields.  Hand-rolled
   on purpose — no sexplib dependency, same ethos as lib/trace/json.ml. *)

type sexp = Atom of string * int (* text, line *) | List of sexp list * int

type kind = Library | Executable | Test

type stanza = {
  kind : kind;
  name : string;
  libraries : string list;
  line : int; (* of the stanza opener, for findings *)
}

exception Parse_error of string * int

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | ';' ->
        (* comment to end of line *)
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        toks := `Open !line :: !toks;
        incr i
    | ')' ->
        toks := `Close !line :: !toks;
        incr i
    | '"' ->
        (* quoted atom; dune files here only use backslash escapes *)
        let start_line = !line in
        let buf = Buffer.create 16 in
        incr i;
        while !i < n && text.[!i] <> '"' do
          if text.[!i] = '\n' then incr line;
          if text.[!i] = '\\' && !i + 1 < n then begin
            Buffer.add_char buf text.[!i + 1];
            i := !i + 2
          end
          else begin
            Buffer.add_char buf text.[!i];
            incr i
          end
        done;
        if !i >= n then raise (Parse_error ("unterminated string", start_line));
        incr i;
        toks := `Atom (Buffer.contents buf, start_line) :: !toks
    | _ ->
        let start = !i and start_line = !line in
        while
          !i < n
          && not
               (match text.[!i] with
               | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' -> true
               | _ -> false)
        do
          incr i
        done;
        toks := `Atom (String.sub text start (!i - start), start_line) :: !toks);
  done;
  List.rev !toks

let parse text : sexp list =
  let toks = ref (tokenize text) in
  let rec parse_one () =
    match !toks with
    | [] -> None
    | `Atom (s, l) :: rest ->
        toks := rest;
        Some (Atom (s, l))
    | `Open l :: rest ->
        toks := rest;
        let items = ref [] in
        let rec loop () =
          match !toks with
          | `Close _ :: rest ->
              toks := rest
          | [] -> raise (Parse_error ("unbalanced parenthesis", l))
          | _ ->
              (match parse_one () with
              | Some s -> items := s :: !items
              | None -> raise (Parse_error ("unbalanced parenthesis", l)));
              loop ()
        in
        loop ();
        Some (List (List.rev !items, l))
    | `Close l :: _ -> raise (Parse_error ("stray closing parenthesis", l))
  in
  let out = ref [] in
  let rec all () =
    match parse_one () with
    | Some s ->
        out := s :: !out;
        all ()
    | None -> ()
  in
  all ();
  List.rev !out

let atoms = List.filter_map (function Atom (a, _) -> Some a | List _ -> None)

let field name items =
  List.find_map
    (function
      | List (Atom (n, _) :: rest, _) when n = name -> Some rest
      | _ -> None)
    items

(* Extract stanzas from a parsed dune file.  (executables) with several
   (names ...) yields one stanza per name. *)
let stanzas_of text : stanza list =
  let tops = parse text in
  List.concat_map
    (function
      | List (Atom (kw, line) :: fields, _) ->
          let kind =
            match kw with
            | "library" -> Some Library
            | "executable" -> Some Executable
            | "executables" -> Some Executable
            | "test" | "tests" -> Some Test
            | _ -> None
          in
          (match kind with
          | None -> []
          | Some kind ->
              let libraries =
                match field "libraries" fields with
                | Some rest -> atoms rest
                | None -> []
              in
              let names =
                match (field "name" fields, field "names" fields) with
                | Some rest, _ -> atoms rest
                | None, Some rest -> atoms rest
                | None, None -> []
              in
              List.map
                (fun name -> { kind; name; libraries; line })
                (match names with [] -> [ "?" ] | ns -> ns))
      | _ -> [])
    tops
