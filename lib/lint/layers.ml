(* L1: the layer DAG.

   The repo's layering is engine → net → proto → kernel → sim →
   experiments (with stats/trace/parallel/det as leaves and trace/check
   free to observe everything below the drivers).  It is encoded as a
   rank per library in Config.layer_rank: a *library* may only depend on
   libraries of strictly lower rank.  Executables and tests sit outside
   the DAG and may link anything — they are the drivers.

   Two findings:
     - a library depends on an equal-or-higher-ranked library
       (e.g. lib/net depending on lrp_experiments);
     - an lrp_* name that is missing from the rank table (either side):
       new libraries must take an explicit place in the DAG. *)

let check ~config ~file (stanzas : Dunefile.stanza list) : Finding.t list =
  let rank name = List.assoc_opt name config.Config.layer_rank in
  let is_lrp name =
    String.length name >= 4 && String.sub name 0 4 = "lrp_"
  in
  List.concat_map
    (fun (s : Dunefile.stanza) ->
      match s.kind with
      | Executable | Test -> []
      | Library -> (
          match rank s.name with
          | None ->
              if is_lrp s.name then
                [
                  Finding.v ~rule:"L1" ~file ~line:s.line ~col:0
                    (Printf.sprintf
                       "library %s has no rank in the layer DAG; add it to \
                        Lint.Config.layer_rank"
                       s.name);
                ]
              else []
          | Some r ->
              List.filter_map
                (fun dep ->
                  if not (is_lrp dep) then None
                  else
                    match rank dep with
                    | None ->
                        Some
                          (Finding.v ~rule:"L1" ~file ~line:s.line ~col:0
                             (Printf.sprintf
                                "%s depends on %s, which has no rank in the \
                                 layer DAG"
                                s.name dep))
                    | Some rd when rd >= r ->
                        Some
                          (Finding.v ~rule:"L1" ~file ~line:s.line ~col:0
                             (Printf.sprintf
                                "layer violation: %s (rank %d) depends on %s \
                                 (rank %d); dependencies must point strictly \
                                 down the DAG"
                                s.name r dep rd))
                    | Some _ -> None)
                s.libraries))
    stanzas
