(* Findings are the shared analyzer format (Lrp_report.Finding): one
   sort order, one text rendering, one JSON shape for both lrp_lint and
   lrp_allocheck.  This module re-exports it under the historical
   [Lrp_lint.Finding] name so rule modules and tool drivers are
   unaffected by the factoring. *)

include Lrp_report.Finding
