(* Expression- and structure-level rules over the Parsetree.

   The analysis is purely syntactic (no typing pass): it looks at the
   longidents a module references and at what its structure-level
   bindings allocate.  That keeps the linter dependency-free and fast,
   at the cost of not seeing through aliases ([module H = Hashtbl]) —
   acceptable because the codebase doesn't alias stdlib modules, and a
   new alias would be caught in review by the fixture suite's example.

   Rules implemented here:
     D1  ambient time/randomness outside lib/engine/rng.ml
     D2  unordered Hashtbl iteration outside lib/core/det.ml
     D3  Marshal anywhere; polymorphic compare in configured files
     D4  structural (tuple/record) Hashtbl keys on hot-path layers
     P1  stdout printing inside lib/ outside designated sinks
     C1  non-atomic module-level mutable state inside lib/
     C2  module-level mutable state (however nested, Atomic included) on
         cell-parallel layers; shard-local state must live in per-cell
         context records *)

open Parsetree

type ctx = {
  config : Config.t;
  file : string;
  supp : Suppress.t;
  mutable findings : Finding.t list;
}

let emit ctx ~rule ~loc msg =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol
  in
  if not (Suppress.claim ctx.supp ~rule ~line) then
    ctx.findings <- Finding.v ~rule ~file:ctx.file ~line ~col msg :: ctx.findings

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten_longident p @ [ s ]
  | Longident.Lapply _ -> []

(* --- ident-based rules (D1, D2, D3, P1) ------------------------------- *)

let d1_banned = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let d2_banned =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let p1_banned =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "Format.open_box";
  ]

let check_ident ctx ~loc lid =
  let parts = flatten_longident lid in
  let name = String.concat "." parts in
  let head = match parts with h :: _ -> h | [] -> "" in
  (* D1: wall clock and ambient randomness. *)
  if not (Config.in_files ctx.file ctx.config.Config.rng_files) then begin
    if head = "Random" then
      emit ctx ~rule:"D1" ~loc
        (Printf.sprintf
           "ambient randomness: %s is banned outside lib/engine/rng.ml; \
            thread an Rng.t (seeded, splittable) instead"
           name)
    else if List.mem name d1_banned then
      if not (Config.in_files ctx.file ctx.config.Config.wallclock_files) then
        emit ctx ~rule:"D1" ~loc
          (Printf.sprintf
             "wall-clock read: %s is banned outside lib/engine/rng.ml; \
              simulated time comes from Engine.now"
             name)
  end;
  (* D2: unordered hash-table iteration. *)
  if
    List.mem name d2_banned
    && not (Config.in_files ctx.file ctx.config.Config.det_files)
  then
    emit ctx ~rule:"D2" ~loc
      (Printf.sprintf
         "unordered iteration: %s can leak hash-table layout into output; \
          use Lrp_det.Det.{iter_sorted,fold_sorted,bindings,sorted_keys}"
         name);
  (* D3a: Marshal is never representation-stable. *)
  if head = "Marshal" then
    emit ctx ~rule:"D3" ~loc
      (Printf.sprintf
         "%s: Marshal output depends on sharing and word size; write an \
          explicit codec"
         name);
  (* D3b: polymorphic comparison in files with float-carrying or mutable
     record types.  Bare [compare] (applied or not), [Stdlib.compare],
     [Hashtbl.hash]; unapplied [=]/[<>] are caught here too because the
     applied (infix scalar) form skips the operator ident (see
     [iterator]). *)
  (match Config.d3_types_of ctx.config ctx.file with
  | None -> ()
  | Some types ->
      let poly =
        match name with
        | "compare" | "Stdlib.compare" | "Pervasives.compare"
        | "Hashtbl.hash" | "=" | "<>" ->
            true
        | _ -> false
      in
      if poly then
        emit ctx ~rule:"D3" ~loc
          (Printf.sprintf
             "polymorphic %s in a module defining %s (float-carrying or \
              mutable): use a monomorphic comparator"
             (if name = "=" || name = "<>" then "(" ^ name ^ ")" else name)
             (String.concat ", " types)));
  (* P1: stdout printing in library code. *)
  if
    List.mem name p1_banned
    && Config.in_scope ctx.file ctx.config.Config.stateful_scope
    && not (Config.in_files ctx.file ctx.config.Config.sink_files)
  then
    emit ctx ~rule:"P1" ~loc
      (Printf.sprintf
         "stdout write: %s in library code; route output through a trace \
          sink or return data to the caller"
         name)

(* --- D4: structural Hashtbl keys on hot-path layers -------------------- *)

(* A polymorphic [Hashtbl] probed with a tuple or record key pays
   structural hashing — a recursive walk over the key and its boxed
   fields — plus a key allocation at every call site, per packet on the
   layers the demultiplexer lives in.  Detection is syntactic, like the
   rest of the linter: a [Hashtbl] operation whose argument is a literal
   tuple or record is exactly the pattern that builds a fresh structural
   key per probe.  (A key built elsewhere and passed by name escapes
   this rule, but the construction site is then flagged instead the next
   time it is a literal — in practice the literal form is how every such
   table is used.)  The fix is a packed-key table: Lrp_core.Flowtab. *)
let d4_keyed_ops =
  [ "add"; "replace"; "find"; "find_opt"; "find_all"; "mem"; "remove" ]

let rec is_structural_key e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ -> true
  | Pexp_constraint (e, _) -> is_structural_key e
  | _ -> false

let check_apply ctx ~loc fn args =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten_longident txt with
      | [ "Hashtbl"; op ]
        when List.mem op d4_keyed_ops
             && Config.in_dirs ctx.file ctx.config.Config.d4_dirs
             && not
                  (Config.in_files ctx.file ctx.config.Config.d4_exempt_files)
             && List.exists (fun (_, a) -> is_structural_key a) args ->
          emit ctx ~rule:"D4" ~loc
            (Printf.sprintf
               "structural key in Hashtbl.%s on a hot-path layer: \
                polymorphic hashing walks the tuple/record (and allocates \
                it) on every probe; pack the key into ints and use \
                Lrp_core.Flowtab"
               op)
      | _ -> ())
  | _ -> ()

(* Infix scalar comparisons [a = b] are fine even in D3 files (they compare
   whatever the site compares, usually ints); only the *unapplied* operator
   — passed to List.mem, sort, etc., where it closes over whole structures —
   is flagged.  So the iterator skips the operator ident of an applied
   comparison but still visits the arguments. *)
let scalar_infix = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

let iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr it e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        check_ident ctx ~loc:e.pexp_loc txt;
        default.expr it e
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, args)
      when List.mem op scalar_infix ->
        List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Pexp_apply (fn, args) ->
        check_apply ctx ~loc:e.pexp_loc fn args;
        default.expr it e
    | _ -> default.expr it e
  in
  { default with expr }

(* --- C1: module-level mutable state ----------------------------------- *)

(* Expression heads that allocate mutable state when bound at module
   level.  [Atomic.make] is the sanctioned form and is absent from the
   list.  Functor bodies are skipped: their state is per-application. *)
let mutable_makers =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.create_float";
    "Array.init";
  ]

let rec mutable_maker_of e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> mutable_maker_of e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      let name = String.concat "." (flatten_longident txt) in
      if List.mem name mutable_makers then Some name else None
  | _ -> None

(* --- C2: shard-shared mutable state on cell-parallel layers ------------ *)

(* Code in [c2_dirs] (lib/engine, lib/net) runs cell-parallel under
   Shardsim: one domain per shard, every domain executing the same
   modules against different cells.  Any module-level binding holding
   mutable state — however deeply nested in a record, tuple or array
   literal, and *including* [Atomic.make], whose per-process counter
   would couple cells and break shard-count invariance (the bug the
   per-engine Idspace removed) — is therefore shared across shards.
   Mutable state on these layers must be reachable only through a
   per-cell context record (Engine.t, Fabric.t, Nic.t, Idspace.t).

   C1 already flags a *head-level* maker ([let t = Hashtbl.create ..]);
   C2 looks inside the bound expression, where C1 cannot see (a record
   of arrays like a module-level SoA pool, an array literal, a nested
   [ref]).  Function bodies are skipped: state allocated at call time is
   per-call, not a module-level singleton.  lib/parallel is deliberately
   outside [c2_dirs] — it is the one sanctioned home for cross-domain
   module state (the shared worker pool), guarded by its own locks. *)

let c2_makers = "Atomic.make" :: mutable_makers

let check_c2_binding ctx vb =
  let rec strip e =
    match e.pexp_desc with Pexp_constraint (e, _) -> strip e | _ -> e
  in
  let head = strip vb.pvb_expr in
  (* a head-level maker is C1's finding; don't report it twice *)
  let head_is_c1 = mutable_maker_of vb.pvb_expr <> None in
  let emit_c2 ~loc what =
    emit ctx ~rule:"C2" ~loc
      (Printf.sprintf
         "shard-shared mutable state (%s) at module level on a \
          cell-parallel layer: one copy is visible to every shard domain \
          and breaks shard-count invariance; hang it off a per-cell \
          context record (Engine.t / Fabric.t / Idspace.t) or justify \
          with (* lint: \
          shared-ok — reason *)"
         what)
  in
  let default = Ast_iterator.default_iterator in
  let expr it e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> () (* per-call state, not shared *)
    | Pexp_array (_ :: _) ->
        emit_c2 ~loc:e.pexp_loc "array literal";
        default.expr it e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        let name = String.concat "." (flatten_longident txt) in
        if List.mem name c2_makers && not (head_is_c1 && e == head) then
          emit_c2 ~loc:e.pexp_loc name;
        default.expr it e
    | _ -> default.expr it e
  in
  let it = { default with expr } in
  it.Ast_iterator.expr it vb.pvb_expr

let rec check_structure ctx items = List.iter (check_structure_item ctx) items

and check_structure_item ctx item =
  match item.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          (match mutable_maker_of vb.pvb_expr with
          | Some maker ->
              emit ctx ~rule:"C1" ~loc:vb.pvb_loc
                (Printf.sprintf
                   "module-level mutable state (%s): shared by every domain \
                    in a pool; use Atomic.t or justify with (* lint: \
                    domain-local — reason *)"
                   maker)
          | None -> ());
          if Config.in_dirs ctx.file ctx.config.Config.c2_dirs then
            check_c2_binding ctx vb)
        vbs
  | Pstr_module mb -> check_module_expr ctx mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.iter (fun mb -> check_module_expr ctx mb.pmb_expr) mbs
  | Pstr_include i -> check_module_expr ctx i.pincl_mod
  | _ -> ()

and check_module_expr ctx me =
  match me.pmod_desc with
  | Pmod_structure s -> check_structure ctx s
  | Pmod_constraint (m, _) -> check_module_expr ctx m
  | Pmod_functor (_, _) ->
      (* per-application state, not a module-level singleton *)
      ()
  | _ -> ()

(* --- entry point ------------------------------------------------------- *)

(* Run all source rules over one implementation file.  Returns findings
   in source order (driver sorts globally). *)
let check_impl ~config ~file ~supp (ast : structure) =
  let ctx = { config; file; supp; findings = [] } in
  let it = iterator ctx in
  it.Ast_iterator.structure it ast;
  if Config.in_scope file config.Config.stateful_scope then
    check_structure ctx ast;
  List.rev ctx.findings
