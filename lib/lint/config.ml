(* Per-rule configuration for lrp_lint.

   Path matching (suffix after '/'-normalisation, component scopes,
   consecutive-component directory runs) is the shared
   Lrp_report.Pathspec, re-exported below so rule modules and tests keep
   their historical [Config.in_files]-style call sites. *)

type t = {
  rng_files : string list;
      (* D1: the one module allowed to own ambient nondeterminism. *)
  wallclock_files : string list;
      (* D1: wall-clock reads (Sys.time / Unix.gettimeofday) allowed —
         benchmark harnesses measure real elapsed time by design.
         Random.* stays banned here. *)
  det_files : string list;
      (* D2: the sorted-iteration helper implementation itself. *)
  d3_files : (string * string list) list;
      (* D3: files whose float-carrying or mutable record types make
         polymorphic compare/(=) hazardous, with the type names for the
         message.  In these files, bare [compare], [Stdlib.compare],
         [Hashtbl.hash] and unapplied [(=)]/[(<>)] are banned. *)
  d4_dirs : string list;
      (* D4: hot-path layer directories where a polymorphic [Hashtbl]
         probe with a structural (tuple/record) key is banned —
         structural hashing allocates and chases pointers per packet;
         pack the key into ints ({!Lrp_core.Flowtab}). *)
  d4_exempt_files : string list;
      (* D4: files inside [d4_dirs] allowed to keep structural keys.
         lib/proto/pcb.ml models the *BSD* PCB lookup the paper singles
         out as a known performance problem — its cost is the point, it
         is not on any LRP fast path, and its generic value type cannot
         use the packed-key Flowtab (lib/core) without inverting the
         layer DAG (proto ranks below core). *)
  stateful_scope : string list;
      (* C1/P1 apply only under these path components (library code);
         executables under bin/ and bench/ may print and hold state. *)
  c2_dirs : string list;
      (* C2: directories whose code runs cell-parallel under Shardsim —
         module-level bindings there must not hold mutable state even
         nested inside records/closures ([Atomic.t] included: a shared
         counter still couples cells and breaks shard-count invariance).
         Mutable state must hang off a per-cell context record (Engine.t,
         Fabric.t, Idspace.t).  lib/parallel is deliberately absent: it
         is the one sanctioned home for cross-domain module state. *)
  sink_files : string list;
      (* P1: trace/report sink modules allowed to write stdout. *)
  layer_rank : (string * int) list;
      (* L1: library name -> layer rank.  A library may only depend on
         strictly lower ranks.  Unknown lrp_* names are findings, so new
         libraries must be placed in the DAG explicitly. *)
}

let default =
  {
    rng_files = [ "lib/engine/rng.ml" ];
    wallclock_files = [ "bench/main.ml" ];
    det_files = [ "lib/core/det.ml" ];
    d3_files =
      [
        ("lib/stats/stats.ml", [ "summary"; "Samples.t"; "Rate.t" ]);
        ("lib/proto/tcp.ml", [ "conn"; "timer" ]);
        ("lib/sched/sched.ml", [ "thread" ]);
        ("lib/trace/trace.ml", [ "entry"; "Report.marks" ]);
        ("lib/engine/eheap.ml", [ "t" ]);
      ];
    d4_dirs = [ "lib/engine"; "lib/net"; "lib/proto"; "lib/core" ];
    d4_exempt_files = [ "lib/proto/pcb.ml" ];
    stateful_scope = [ "lib" ];
    c2_dirs = [ "lib/engine"; "lib/net" ];
    sink_files = [];
    layer_rank =
      [
        (* leaves: no lrp dependencies *)
        ("lrp_det", 0);
        ("lrp_stats", 0);
        ("lrp_parallel", 0);
        ("lrp_report", 0);
        (* the analyzers share the report/suppression grammar *)
        ("lrp_lint", 1);
        ("lrp_allocheck", 1);
        (* the simulation core *)
        ("lrp_engine", 1);
        ("lrp_trace", 2);
        ("lrp_net", 3);
        ("lrp_sched", 3);
        ("lrp_proto", 4);
        ("lrp_sim", 4);
        ("lrp_core", 5);
        ("lrp_kernel", 6);
        (* observers and drivers *)
        ("lrp_workload", 7);
        ("lrp_check", 7);
        ("lrp_experiments", 8);
      ];
  }

let normalize = Lrp_report.Pathspec.normalize
let has_suffix_path = Lrp_report.Pathspec.has_suffix_path
let in_files = Lrp_report.Pathspec.in_files
let in_scope = Lrp_report.Pathspec.in_scope
let in_dirs = Lrp_report.Pathspec.in_dirs

let d3_types_of config file =
  List.find_map
    (fun (f, tys) -> if has_suffix_path file f then Some tys else None)
    config.d3_files
