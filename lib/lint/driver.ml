(* File discovery and the analysis pipeline.

   [run config paths] walks the given files/directories, parses every
   .ml/.mli with compiler-libs and every file named `dune` with the
   s-expression reader, applies the rules, and returns globally sorted
   findings plus scan statistics.  Directory entries are visited in
   sorted order and findings are sorted at the end, so the report is
   byte-stable across filesystems. *)

type stats = { ml_files : int; mli_files : int; dune_files : int }

let skip_dirs = [ "_build"; "_opam"; ".git"; "node_modules" ]

let rec collect acc path =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if List.mem entry skip_dirs || (entry <> "" && entry.[0] = '.') then
             acc
           else collect acc (Filename.concat path entry))
         acc
  else
    let base = Filename.basename path in
    if Filename.check_suffix base ".ml" then `Ml path :: acc
    else if Filename.check_suffix base ".mli" then `Mli path :: acc
    else if base = "dune" then `Dune path :: acc
    else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_finding ~file exn =
  let line =
    match exn with
    | Syntaxerr.Error err ->
        (Syntaxerr.location_of_error err).Location.loc_start.Lexing.pos_lnum
    | _ -> 1
  in
  Finding.v ~rule:"PARSE" ~file ~line ~col:0
    (Printf.sprintf "cannot parse: %s" (Printexc.to_string exn))

let check_ml ~config file =
  let text = read_file file in
  let supp = Suppress.scan text in
  let lb = Lexing.from_string text in
  Location.init lb file;
  match Parse.implementation lb with
  | ast ->
      (* Rules must run (and claim suppressions) before the unused-
         suppression sweep — keep the sequencing explicit. *)
      let fs = Srcrules.check_impl ~config ~file ~supp ast in
      fs @ Suppress.unused supp ~file
  | exception exn -> [ parse_error_finding ~file exn ]

let check_mli file =
  let text = read_file file in
  let lb = Lexing.from_string text in
  Location.init lb file;
  match Parse.interface lb with
  | _ -> []
  | exception exn -> [ parse_error_finding ~file exn ]

let check_dune ~config file =
  match Dunefile.stanzas_of (read_file file) with
  | stanzas -> Layers.check ~config ~file stanzas
  | exception Dunefile.Parse_error (msg, line) ->
      [
        Finding.v ~rule:"PARSE" ~file ~line ~col:0
          (Printf.sprintf "cannot parse dune file: %s" msg);
      ]

let run ?(config = Config.default) paths : Finding.t list * stats =
  let files = List.fold_left collect [] paths |> List.rev in
  let stats =
    {
      ml_files =
        List.length (List.filter (function `Ml _ -> true | _ -> false) files);
      mli_files =
        List.length (List.filter (function `Mli _ -> true | _ -> false) files);
      dune_files =
        List.length (List.filter (function `Dune _ -> true | _ -> false) files);
    }
  in
  let findings =
    List.concat_map
      (function
        | `Ml f -> check_ml ~config f
        | `Mli f -> check_mli f
        | `Dune f -> check_dune ~config f)
      files
  in
  (Finding.sort findings, stats)
