(** NI channels (paper section 3.1).

    An NI channel is the queue shared between the network interface and the
    rest of the kernel.  Each socket gets its own channel; all received
    traffic for the socket flows through it.  The channel is where LRP's two
    load-control mechanisms live:

    - {b early packet discard}: once the queue is full, further packets for
      this socket are silently dropped by the NI (or the interrupt handler,
      for soft demux) before any host resources are invested;
    - {b feedback}: because receiver protocol processing runs at the
      receiving application's priority, a receiver that cannot keep up stops
      draining its channel, and the overload is shed at the NI without
      affecting any other socket.

    [processing_enabled] implements the listening-socket rule of section
    3.4: protocol processing is disabled for listeners whose backlog is
    exceeded, causing further SYNs to die here, cheaply.

    [intr_requested] is the interrupt-suppression flag of section 3.3: the
    NI raises a host interrupt only when the queue transitions from empty to
    non-empty and a receiver asked to be notified. *)

open Lrp_net

type t = {
  id : int;
  chan_name : string;
  queue : Packet.t Queue.t;
  limit : int;
  mutable intr_requested : bool;
  mutable processing_enabled : bool;
  (* statistics *)
  mutable enqueued : int;
  mutable discarded : int;        (* early discards: queue full *)
  mutable discarded_disabled : int; (* discards due to disabled processing *)
}

(* Atomic: channel ids must stay unique when simulations run on concurrent
   domains (they key per-kernel tables). *)
let id_counter = Atomic.make 0

let create ?(limit = 32) ~name () =
  { id = Atomic.fetch_and_add id_counter 1 + 1; chan_name = name;
    queue = Queue.create (); limit;
    intr_requested = false; processing_enabled = true; enqueued = 0;
    discarded = 0; discarded_disabled = 0 }

let name t = t.chan_name
let id t = t.id

type enqueue_result =
  | Queued of [ `Was_empty | `Was_nonempty ]
  | Discarded

(* [enqueue t pkt] is what the NI does on packet arrival: early discard when
   the queue is full or processing is disabled, FIFO append otherwise. *)
let enqueue t pkt =
  if not t.processing_enabled then begin
    t.discarded_disabled <- t.discarded_disabled + 1;
    Discarded
  end
  else if Queue.length t.queue >= t.limit then begin
    t.discarded <- t.discarded + 1;
    Discarded
  end
  else begin
    let was_empty = Queue.is_empty t.queue in
    Queue.add pkt t.queue;
    t.enqueued <- t.enqueued + 1;
    Queued (if was_empty then `Was_empty else `Was_nonempty)
  end

let dequeue t = Queue.take_opt t.queue

let peek t = Queue.peek_opt t.queue

let length t = Queue.length t.queue

let is_empty t = Queue.is_empty t.queue

(* Remove queued packets matching [pred]; used by IP reassembly to fish
   missing fragments out of the special fragment channel. *)
let extract t pred =
  let keep = Queue.create () in
  let out = ref [] in
  Queue.iter (fun p -> if pred p then out := p :: !out else Queue.add p keep) t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  List.rev !out

let request_interrupt t = t.intr_requested <- true

let clear_interrupt_request t = t.intr_requested <- false

let interrupt_requested t = t.intr_requested

let enable_processing t = t.processing_enabled <- true

let disable_processing t = t.processing_enabled <- false

let processing_enabled t = t.processing_enabled

let enqueued t = t.enqueued
let discarded t = t.discarded
let discarded_disabled t = t.discarded_disabled

let pp fmt t =
  Fmt.pf fmt "chan %s#%d [%d/%d] in=%d drop=%d" t.chan_name t.id
    (Queue.length t.queue) t.limit t.enqueued (t.discarded + t.discarded_disabled)
