(** NI channels (paper section 3.1).

    An NI channel is the queue shared between the network interface and the
    rest of the kernel.  Each socket gets its own channel; all received
    traffic for the socket flows through it.  The channel is where LRP's two
    load-control mechanisms live:

    - {b early packet discard}: once the queue is full, further packets for
      this socket are silently dropped by the NI (or the interrupt handler,
      for soft demux) before any host resources are invested;
    - {b feedback}: because receiver protocol processing runs at the
      receiving application's priority, a receiver that cannot keep up stops
      draining its channel, and the overload is shed at the NI without
      affecting any other socket.

    [processing_enabled] implements the listening-socket rule of section
    3.4: protocol processing is disabled for listeners whose backlog is
    exceeded, causing further SYNs to die here, cheaply.

    [intr_requested] is the interrupt-suppression flag of section 3.3: the
    NI raises a host interrupt only when the queue transitions from empty to
    non-empty and a receiver asked to be notified. *)

open Lrp_net

(* The queue is a fixed ring of {!Parena} handles: the NI admits a frame
   into the (usually kernel-shared) descriptor arena and pushes the
   handle — an immediate int — into a flat ring sized exactly [limit]
   (enqueue early-discards at [limit], so the ring can never overflow).
   Compared with the previous [Packet.t Queue.t] this removes, per
   packet: the queue-cell allocation on enqueue, the option allocation
   of [Queue.take_opt], and the boxed packet sitting behind one more
   pointer indirection on the hottest per-packet loop in the system. *)
type t = {
  id : int;
  chan_name : string;
  arena : Parena.t;
  ring : int array; (* Parena handles *)
  mutable head : int; (* index of the oldest entry *)
  mutable count : int;
  limit : int;
  mutable intr_requested : bool;
  mutable processing_enabled : bool;
  (* statistics *)
  mutable enqueued : int;
  mutable discarded : int;        (* early discards: queue full *)
  mutable discarded_disabled : int; (* discards due to disabled processing *)
  mutable hwm : int;              (* deepest queue occupancy observed *)
}

(* Channel ids come from the per-engine id space installed on this domain
   (Lrp_engine.Idspace), so a cell's id sequence is independent of other
   simulations — and other shards — allocating concurrently. *)

let create ?arena ?(limit = 32) ~name () =
  let arena =
    (* Real kernels share one arena across all their channels; a channel
       created standalone (tests, microbenches) gets a private one. *)
    match arena with Some a -> a | None -> Parena.create ()
  in
  { id = Lrp_engine.Idspace.next_chan_id (); chan_name = name;
    arena; ring = Array.make (max 1 limit) Parena.none; head = 0; count = 0;
    limit;
    intr_requested = false; processing_enabled = true; enqueued = 0;
    discarded = 0; discarded_disabled = 0; hwm = 0 }

let name t = t.chan_name
let id t = t.id

type enqueue_result =
  | Queued of [ `Was_empty | `Was_nonempty ]
  | Discarded

(* Alloc-free result codes for the per-packet fast path; {!enqueue} wraps
   them in the structured variant for callers that prefer pattern
   matching. *)
let discarded_code = 0
let queued_was_empty = 1
let queued_was_nonempty = 2

(* [enqueue_code t pkt] is what the NI does on packet arrival: early
   discard when the queue is full or processing is disabled, FIFO append
   otherwise.  Returns one of the codes above; together with the handle
   ring this keeps the admission path free of per-packet allocation. *)
let enqueue_code t pkt =
  if not t.processing_enabled then begin
    t.discarded_disabled <- t.discarded_disabled + 1;
    discarded_code
  end
  else if t.count >= t.limit then begin
    t.discarded <- t.discarded + 1;
    discarded_code
  end
  else begin
    let was_empty = t.count = 0 in
    let cap = Array.length t.ring in
    let tail = t.head + t.count in
    let tail = if tail >= cap then tail - cap else tail in
    t.ring.(tail) <- Parena.acquire t.arena pkt;
    t.count <- t.count + 1;
    if t.count > t.hwm then t.hwm <- t.count;
    t.enqueued <- t.enqueued + 1;
    if was_empty then queued_was_empty else queued_was_nonempty
  end

let enqueue t pkt =
  let c = enqueue_code t pkt in
  if c = discarded_code then Discarded
  else Queued (if c = queued_was_empty then `Was_empty else `Was_nonempty)

(* [pop t] dequeues without boxing: [Lrp_net.Packet.null] (compare with
   [==]) means the queue was empty.  The consumer-side twin of
   {!enqueue_code}. *)
let pop t =
  if t.count = 0 then Packet.null
  else begin
    let h = t.ring.(t.head) in
    t.ring.(t.head) <- Parena.none;
    let head' = t.head + 1 in
    t.head <- (if head' >= Array.length t.ring then 0 else head');
    t.count <- t.count - 1;
    let pkt = Parena.pkt t.arena h in
    Parena.release t.arena h;
    pkt
  end

let dequeue t = if t.count = 0 then None else Some (pop t)

let peek t =
  if t.count = 0 then None else Some (Parena.pkt t.arena t.ring.(t.head))

let length t = t.count

let is_empty t = t.count = 0

(* Remove queued packets matching [pred]; used by IP reassembly to fish
   missing fragments out of the special fragment channel.  Cold path:
   compacts the surviving handles back to the front of the ring. *)
let extract t pred =
  let cap = Array.length t.ring in
  let n = t.count in
  let out = ref [] in
  let kept = ref 0 in
  let keep = Array.make (max 1 n) Parena.none in
  for i = 0 to n - 1 do
    let h = t.ring.((t.head + i) mod cap) in
    let p = Parena.pkt t.arena h in
    if pred p then begin
      out := p :: !out;
      Parena.release t.arena h
    end
    else begin
      keep.(!kept) <- h;
      incr kept
    end
  done;
  Array.fill t.ring 0 cap Parena.none;
  Array.blit keep 0 t.ring 0 !kept;
  t.head <- 0;
  t.count <- !kept;
  List.rev !out

let request_interrupt t = t.intr_requested <- true

let clear_interrupt_request t = t.intr_requested <- false

let interrupt_requested t = t.intr_requested

let enable_processing t = t.processing_enabled <- true

let disable_processing t = t.processing_enabled <- false

let processing_enabled t = t.processing_enabled

let enqueued t = t.enqueued
let discarded t = t.discarded
let discarded_disabled t = t.discarded_disabled
let high_watermark t = t.hwm

let pp fmt t =
  Fmt.pf fmt "chan %s#%d [%d/%d] in=%d drop=%d" t.chan_name t.id
    t.count t.limit t.enqueued (t.discarded + t.discarded_disabled)
