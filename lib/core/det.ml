(* Deterministic iteration over hash tables.

   [Hashtbl]'s iteration order depends on the hash function, the table's
   growth history and the insertion order, none of which this repo wants
   observable: any value that can reach experiment output, trace sinks or
   scheduling decisions must be derived in a reproducible order, or the
   "byte-identical at any --jobs" guarantee (PR 1) silently erodes.

   These helpers snapshot a table's bindings and visit them in ascending
   key order.  They are the only place in the tree allowed to call
   [Hashtbl.fold] on an unordered table (rule D2 in lib/lint exempts this
   file); every other site must go through them.

   For tables populated with [Hashtbl.add] (shadowed duplicate keys), all
   bindings are visited; bindings of equal keys keep [Hashtbl.fold]'s
   most-recent-first relative order (the sort is stable).  Tables in this
   repo use [replace] semantics, so in practice keys are unique. *)

(* D2 exemption: this module implements the sorted snapshot itself. *)

let bindings ?(cmp = Stdlib.compare) tbl =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.stable_sort (fun (ka, _) (kb, _) -> cmp ka kb) items

let sorted_keys ?cmp tbl = List.map fst (bindings ?cmp tbl)

let iter_sorted ?cmp f tbl = List.iter (fun (k, v) -> f k v) (bindings ?cmp tbl)

let fold_sorted ?cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ?cmp tbl)
