(** Channel table: maps a demultiplexed flow to the NI channel that
    should receive the packet.

    Resolution rules (mirroring the PCB rules, executed by the NI / the
    interrupt handler):

    - UDP: the channel of the socket bound to the destination port;
    - TCP: the connection's own channel (created when the connection —
      even an embryonic one — comes into existence), falling back to the
      listening socket's channel for connection-establishment requests;
    - non-first IP fragments: a dedicated fragment channel that the IP
      reassembly code checks when it is missing pieces (section 3.2);
    - ICMP and other non-endpoint protocols: the proxy daemon's channel
      (section 3.5). *)

open Lrp_net
open Lrp_proto

(* All endpoint mappings live in ONE packed-key {!Flowtab} instead of
   three polymorphic Hashtbls.  A flow key packs into two ints:

     hi = (namespace lsl 32) lor source-ip
     lo = (source-port lsl 16) lor destination-port

   The namespace tag keeps the three historic tables (UDP-by-port, TCP
   exact, TCP listen) disjoint inside the shared array; fields a rule
   does not match on are zero (UDP and listen entries carry no source).
   IPs are 32-bit and ports 16-bit, so both words are immediate ints and
   a demux probe is a single integer-keyed lookup — no tuple allocation,
   no structural hashing of a boxed [Packet.ip * int * int]. *)
let ns_udp = 0
let ns_tcp = 1
let ns_listen = 2

let[@inline] hi_of ~ns ~src = (ns lsl 32) lor src
let[@inline] lo_of ~src_port ~dst_port = (src_port lsl 16) lor dst_port

type t = {
  tab : Channel.t Flowtab.t;
  frag : Channel.t;
  icmp : Channel.t;
  fwd : Channel.t; (* IP-forwarding daemon's channel (section 3.5) *)
  mutable udp_count : int;
  mutable tcp_count : int;
  mutable unmatched : int;
}

let create ?arena ?(frag_limit = 64) ?(icmp_limit = 32) ?(fwd_limit = 64) () =
  let frag = Channel.create ?arena ~limit:frag_limit ~name:"frag" () in
  let icmp = Channel.create ?arena ~limit:icmp_limit ~name:"icmp" () in
  let fwd = Channel.create ?arena ~limit:fwd_limit ~name:"ipfwd" () in
  { tab = Flowtab.create ~dummy:fwd ();
    frag; icmp; fwd;
    udp_count = 0; tcp_count = 0; unmatched = 0 }

let frag_channel t = t.frag
let icmp_channel t = t.icmp
let fwd_channel t = t.fwd

let add_udp t ~port ch =
  let hi = hi_of ~ns:ns_udp ~src:0 and lo = lo_of ~src_port:0 ~dst_port:port in
  if Flowtab.mem t.tab ~hi ~lo then invalid_arg "Chantab.add_udp: port in use";
  Flowtab.add_new t.tab ~hi ~lo ch;
  t.udp_count <- t.udp_count + 1

let remove_udp t ~port =
  if
    Flowtab.remove t.tab ~hi:(hi_of ~ns:ns_udp ~src:0)
      ~lo:(lo_of ~src_port:0 ~dst_port:port)
  then t.udp_count <- t.udp_count - 1

let add_tcp t ~src ~src_port ~dst_port ch =
  let hi = hi_of ~ns:ns_tcp ~src and lo = lo_of ~src_port ~dst_port in
  if not (Flowtab.mem t.tab ~hi ~lo) then t.tcp_count <- t.tcp_count + 1;
  Flowtab.add t.tab ~hi ~lo ch

let remove_tcp t ~src ~src_port ~dst_port =
  if
    Flowtab.remove t.tab ~hi:(hi_of ~ns:ns_tcp ~src)
      ~lo:(lo_of ~src_port ~dst_port)
  then t.tcp_count <- t.tcp_count - 1

let add_tcp_listen t ~port ch =
  let hi = hi_of ~ns:ns_listen ~src:0
  and lo = lo_of ~src_port:0 ~dst_port:port in
  if Flowtab.mem t.tab ~hi ~lo then
    invalid_arg "Chantab.add_tcp_listen: port in use";
  Flowtab.add_new t.tab ~hi ~lo ch

let remove_tcp_listen t ~port =
  ignore
    (Flowtab.remove t.tab ~hi:(hi_of ~ns:ns_listen ~src:0)
       ~lo:(lo_of ~src_port:0 ~dst_port:port))

(* Slot codes: the alloc-free twin of [Channel.t option].  Non-negative
   values are {!Flowtab} slots (valid until the next table mutation);
   the dedicated channels, which live outside the Flowtab, get their own
   negative codes so a probe can name them without boxing. *)
let slot_none = -1
let slot_frag = -2
let slot_icmp = -3

(* The TCP probe order: exact four-tuple first, then — for
   connection-establishment requests only — the listening socket. *)
let[@inline] resolve_tcp_slot t ~src ~src_port ~dst_port ~syn_only =
  let slot =
    Flowtab.find t.tab ~hi:(hi_of ~ns:ns_tcp ~src)
      ~lo:(lo_of ~src_port ~dst_port)
  in
  if slot >= 0 || not syn_only then slot
  else
    Flowtab.find t.tab ~hi:(hi_of ~ns:ns_listen ~src:0)
      ~lo:(lo_of ~src_port:0 ~dst_port)

let[@inline] resolve_udp_slot t ~dst_port =
  Flowtab.find t.tab ~hi:(hi_of ~ns:ns_udp ~src:0)
    ~lo:(lo_of ~src_port:0 ~dst_port)

let[@inline] resolve_tcp t ~src ~src_port ~dst_port ~syn_only =
  let slot = resolve_tcp_slot t ~src ~src_port ~dst_port ~syn_only in
  if slot >= 0 then Some (Flowtab.value t.tab slot) else None

let[@inline] resolve_udp t ~dst_port =
  let slot = resolve_udp_slot t ~dst_port in
  if slot >= 0 then Some (Flowtab.value t.tab slot) else None

(* [resolve t flow] finds the destination channel, or [None] when no
   endpoint matches (the packet is then dropped — with zero host investment
   under NI demux). *)
let resolve t flow =
  let result =
    match (flow : Demux.flow) with
    | Demux.Udp_flow { dst_port; _ } -> resolve_udp t ~dst_port
    | Demux.Tcp_flow { src; src_port; dst_port; syn_only } ->
        resolve_tcp t ~src ~src_port ~dst_port ~syn_only
    | Demux.Frag_flow _ -> Some t.frag
    | Demux.Icmp_flow -> Some t.icmp
    | Demux.Other_flow _ -> None
  in
  if Option.is_none result then t.unmatched <- t.unmatched + 1;
  result

(* Packet-direct resolution: classify and probe in one pass, without
   materialising the {!Demux.flow} variant the classifier allocates per
   packet — or anything else: the result is a slot code, so the NI demux
   probe is allocation-free end to end.  Must agree with
   [resolve] ∘ [Demux.flow_of_packet] — the demux equivalence test runs
   the two side by side. *)
let resolve_slot t (pkt : Packet.t) =
  let slot =
    match pkt.Packet.body with
    | Packet.Udp (u, _) -> resolve_udp_slot t ~dst_port:u.Packet.udst_port
    | Packet.Tcp (h, _) ->
        resolve_tcp_slot t ~src:pkt.Packet.ip.Packet.src
          ~src_port:h.Packet.tsrc_port ~dst_port:h.Packet.tdst_port
          ~syn_only:
            (h.Packet.flags.Packet.syn && not h.Packet.flags.Packet.ack)
    | Packet.Icmp _ -> slot_icmp
    | Packet.Fragment f ->
        if f.Packet.foff <> 0 then slot_frag
        else begin
          (* First fragment: the transport header is present, demultiplex
             as the whole datagram would. *)
          match f.Packet.whole.Packet.body with
          | Packet.Udp (u, _) ->
              resolve_udp_slot t ~dst_port:u.Packet.udst_port
          | Packet.Tcp (h, _) ->
              resolve_tcp_slot t ~src:pkt.Packet.ip.Packet.src
                ~src_port:h.Packet.tsrc_port ~dst_port:h.Packet.tdst_port
                ~syn_only:
                  (h.Packet.flags.Packet.syn && not h.Packet.flags.Packet.ack)
          | Packet.Icmp _ -> slot_icmp
          | Packet.Fragment _ ->
              (* degenerate nesting: classified as a fragment flow *)
              slot_frag
        end
  in
  if slot = slot_none then t.unmatched <- t.unmatched + 1;
  slot

let channel_of_slot t slot =
  if slot >= 0 then Flowtab.value t.tab slot
  else if slot = slot_frag then t.frag
  else if slot = slot_icmp then t.icmp
  else invalid_arg "Chantab.channel_of_slot: no channel for slot_none"

let resolve_packet t pkt =
  let slot = resolve_slot t pkt in
  if slot = slot_none then None else Some (channel_of_slot t slot)

let unmatched t = t.unmatched

let udp_channel_count t = t.udp_count
let tcp_channel_count t = t.tcp_count
