(** Channel table: maps a demultiplexed {!Lrp_proto.Demux.flow} to the NI
    channel that should receive the packet.

    Resolution rules (mirroring the PCB rules, executed by the NI / the
    interrupt handler):

    - UDP: the channel of the socket bound to the destination port;
    - TCP: the connection's own channel (created when the connection —
      even an embryonic one — comes into existence), falling back to the
      listening socket's channel for connection-establishment requests;
    - non-first IP fragments: a dedicated fragment channel that the IP
      reassembly code checks when it is missing pieces (section 3.2);
    - ICMP and other non-endpoint protocols: the proxy daemon's channel
      (section 3.5). *)

open Lrp_net
open Lrp_proto

type t = {
  udp : (int, Channel.t) Hashtbl.t;                         (* local port *)
  tcp_exact : (Packet.ip * int * int, Channel.t) Hashtbl.t; (* src, sport, dport *)
  tcp_listen : (int, Channel.t) Hashtbl.t;
  frag : Channel.t;
  icmp : Channel.t;
  fwd : Channel.t;  (* IP-forwarding daemon's channel (section 3.5) *)
  mutable unmatched : int;
}

let create ?(frag_limit = 64) ?(icmp_limit = 32) ?(fwd_limit = 64) () =
  { udp = Hashtbl.create 64; tcp_exact = Hashtbl.create 256;
    tcp_listen = Hashtbl.create 16;
    frag = Channel.create ~limit:frag_limit ~name:"frag" ();
    icmp = Channel.create ~limit:icmp_limit ~name:"icmp" ();
    fwd = Channel.create ~limit:fwd_limit ~name:"ipfwd" ();
    unmatched = 0 }

let frag_channel t = t.frag
let icmp_channel t = t.icmp
let fwd_channel t = t.fwd

let add_udp t ~port ch =
  if Hashtbl.mem t.udp port then invalid_arg "Chantab.add_udp: port in use";
  Hashtbl.replace t.udp port ch

let remove_udp t ~port = Hashtbl.remove t.udp port

let add_tcp t ~src ~src_port ~dst_port ch =
  Hashtbl.replace t.tcp_exact (src, src_port, dst_port) ch

let remove_tcp t ~src ~src_port ~dst_port =
  Hashtbl.remove t.tcp_exact (src, src_port, dst_port)

let add_tcp_listen t ~port ch =
  if Hashtbl.mem t.tcp_listen port then
    invalid_arg "Chantab.add_tcp_listen: port in use";
  Hashtbl.replace t.tcp_listen port ch

let remove_tcp_listen t ~port = Hashtbl.remove t.tcp_listen port

(* [resolve t flow] finds the destination channel, or [None] when no
   endpoint matches (the packet is then dropped — with zero host investment
   under NI demux). *)
let resolve t flow =
  let result =
    match (flow : Demux.flow) with
    | Demux.Udp_flow { dst_port; _ } -> Hashtbl.find_opt t.udp dst_port
    | Demux.Tcp_flow { src; src_port; dst_port; syn_only } ->
        (match Hashtbl.find_opt t.tcp_exact (src, src_port, dst_port) with
         | Some ch -> Some ch
         | None ->
             if syn_only then Hashtbl.find_opt t.tcp_listen dst_port else None)
    | Demux.Frag_flow _ -> Some t.frag
    | Demux.Icmp_flow -> Some t.icmp
    | Demux.Other_flow _ -> None
  in
  if Option.is_none result then t.unmatched <- t.unmatched + 1;
  result

let unmatched t = t.unmatched

let udp_channel_count t = Hashtbl.length t.udp
let tcp_channel_count t = Hashtbl.length t.tcp_exact
