(** Open-addressing flow table over packed integer keys.

    The demultiplexer's lookup structure: keys are two immediate ints
    ([hi]/[lo] — {!Chantab} documents the flow-key packing), storage is
    four parallel arrays indexed by slot, and collisions are resolved by
    robin-hood linear probing with backward-shift deletion.  A probe is
    an integer mix plus a short linear scan: no key allocation, no boxed
    hashing, no bucket-list chasing — the costs a polymorphic [Hashtbl]
    with tuple keys pays on every packet.

    Iteration is in slot order, which is a deterministic function of the
    insert/remove sequence (stdlib [Hashtbl] iteration order is not, and
    is banned from hot-path code by lint rule D2). *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty table.  [dummy] fills empty value
    slots so removed entries do not pin their last value. *)

val length : 'a t -> int
(** Live entries. *)

val capacity : 'a t -> int
(** Current slot-array size (a power of two, ≥ 8/7 × {!length}). *)

val add : 'a t -> hi:int -> lo:int -> 'a -> unit
(** Insert, replacing the value if the key is already present. *)

val add_new : 'a t -> hi:int -> lo:int -> 'a -> unit
(** Insert a key that must not be present.
    @raise Invalid_argument on a duplicate. *)

val find : 'a t -> hi:int -> lo:int -> int
(** Slot index of the key, or [-1] when absent.  Allocation-free; read
    the value with {!value}.  The slot is valid only until the next
    mutation of the table. *)

val value : 'a t -> int -> 'a
(** Value stored in a slot returned by {!find}. *)

val find_opt : 'a t -> hi:int -> lo:int -> 'a option
(** Boxing convenience wrapper over {!find}/{!value} for cold paths. *)

val mem : 'a t -> hi:int -> lo:int -> bool

val remove : 'a t -> hi:int -> lo:int -> bool
(** Delete the key (backward-shift, no tombstones); [false] when it was
    not present. *)

val iter : (hi:int -> lo:int -> 'a -> unit) -> 'a t -> unit
(** Apply to every live entry in slot order. *)

val max_probe : 'a t -> int
(** Largest probe distance currently in the table (1 = at home slot; 0 =
    empty table) — lets tests assert the robin-hood clustering bound. *)
