(* Open-addressing flow table over packed integer keys.

   The demultiplexer's lookup structure.  Polymorphic [Hashtbl] with a
   tuple key — what this replaces — allocates the tuple at every probe,
   hashes it by structural traversal, and chases a bucket list whose
   nodes were allocated all over the heap.  Here a flow key is packed
   into two immediate ints ([hi]/[lo], see {!Chantab} for the packing)
   and the table is four parallel arrays indexed by slot: a probe is an
   integer mix, a masked index, and a linear scan through adjacent
   cache lines, allocating nothing.

   Collision policy is robin-hood linear probing: an inserted entry
   displaces a resident that sits closer to its home slot, so probe
   distances stay tightly clustered around the mean even at high load —
   the worst-case probe at a million flows stays short, where plain
   linear probing grows long tenured runs.  Deletion is backward-shift
   (not tombstones): the following cluster slides back one slot, so the
   table's layout — and therefore [iter]'s slot order — is a pure
   function of the live key set's insertion history, never of how many
   deletions happened in between.

   [meta.(i)] holds the entry's probe distance + 1, with 0 marking an
   empty slot; the robin-hood invariant lets both [find] and [remove]
   stop as soon as the resident's distance drops below the probe's.

   Iteration is in slot order — deterministic for a deterministic
   insert/remove sequence, which is what the replay-equivalence harness
   needs (stdlib [Hashtbl] iteration order depends on the structural
   hash of boxed keys and is banned by lint rule D2). *)

type 'a t = {
  mutable hi : int array;
  mutable lo : int array;
  mutable meta : int array; (* probe distance + 1; 0 = empty slot *)
  mutable vals : 'a array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable count : int;
  mutable limit : int; (* grow when [count] reaches this (7/8 load) *)
  dummy : 'a; (* fills empty value slots so nothing is pinned *)
}

(* 64-bit integer mix (xor-shift-multiply finalizer).  Both words of the
   key feed the state before each multiply, so flows differing only in
   the low port bits or only in the address word still spread across the
   table.  Constants fit in OCaml's 63-bit immediate ints. *)
let[@inline] mix ~hi ~lo =
  let h = hi lxor (lo * 0x100000001b3) in
  let h = (h lxor (h lsr 29)) * 0x21ae7c7e6534cc25 in
  let h = h lxor (h lsr 32) in
  h land max_int

let initial_bits = 4

let create ~dummy () =
  let cap = 1 lsl initial_bits in
  { hi = Array.make cap 0;
    lo = Array.make cap 0;
    meta = Array.make cap 0;
    vals = Array.make cap dummy;
    mask = cap - 1;
    count = 0;
    limit = cap - (cap lsr 3);
    dummy }

let length t = t.count

(* Core robin-hood insertion into the current arrays.  [replace] decides
   what an existing equal key means: [true] overwrites its value (public
   [add]); [false] raises — rehashing must never see a duplicate.
   Once the carried entry has displaced a resident, the keys still being
   carried are by construction distinct from everything ahead, so the
   equality check only runs while the original key is carried. *)
let rec insert t ~hi ~lo ~replace v =
  let mask = t.mask in
  let i = ref (mix ~hi ~lo land mask) in
  let d = ref 1 in
  let chi = ref hi and clo = ref lo and cv = ref v in
  let original = ref true in
  let placed = ref false in
  while not !placed do
    let m = Array.unsafe_get t.meta !i in
    if m = 0 then begin
      Array.unsafe_set t.hi !i !chi;
      Array.unsafe_set t.lo !i !clo;
      Array.unsafe_set t.meta !i !d;
      t.vals.(!i) <- !cv;
      t.count <- t.count + 1;
      placed := true
    end
    else if
      !original
      && Array.unsafe_get t.hi !i = !chi
      && Array.unsafe_get t.lo !i = !clo
    then begin
      if not replace then invalid_arg "Flowtab.add: duplicate key"; (* alloc: cold — error path *)
      t.vals.(!i) <- !cv;
      placed := true
    end
    else begin
      if m < !d then begin
        (* resident is closer to home: displace it, carry it onward *)
        let rhi = Array.unsafe_get t.hi !i
        and rlo = Array.unsafe_get t.lo !i
        and rv = t.vals.(!i) in
        Array.unsafe_set t.hi !i !chi;
        Array.unsafe_set t.lo !i !clo;
        Array.unsafe_set t.meta !i !d;
        t.vals.(!i) <- !cv;
        chi := rhi;
        clo := rlo;
        cv := rv;
        d := m;
        original := false
      end;
      i := (!i + 1) land mask;
      incr d
    end
  done

and grow t =
  let ohi = t.hi and olo = t.lo and ometa = t.meta and ovals = t.vals in
  let ocap = t.mask + 1 in
  let cap = 2 * ocap in
  t.hi <- Array.make cap 0; (* alloc: cold — amortized growth *)
  t.lo <- Array.make cap 0; (* alloc: cold — amortized growth *)
  t.meta <- Array.make cap 0; (* alloc: cold — amortized growth *)
  t.vals <- Array.make cap t.dummy; (* alloc: cold — amortized growth *)
  t.mask <- cap - 1;
  t.limit <- cap - (cap lsr 3);
  t.count <- 0;
  for i = 0 to ocap - 1 do
    if ometa.(i) > 0 then
      insert t ~hi:ohi.(i) ~lo:olo.(i) ~replace:false ovals.(i)
  done

let[@inline] add_gen t ~hi ~lo ~replace v =
  if t.count >= t.limit then grow t;
  insert t ~hi ~lo ~replace v

let add t ~hi ~lo v = add_gen t ~hi ~lo ~replace:true v

let add_new t ~hi ~lo v = add_gen t ~hi ~lo ~replace:false v

(* Allocation-free probe: the slot index (or -1) instead of ['a option].
   The robin-hood invariant bounds the scan: a resident with a probe
   distance shorter than ours proves our key was never inserted past it. *)
let[@inline] find t ~hi ~lo =
  let mask = t.mask in
  let i = ref (mix ~hi ~lo land mask) in
  let d = ref 1 in
  let res = ref (-1) in
  let scanning = ref true in
  while !scanning do
    let m = Array.unsafe_get t.meta !i in
    if m < !d then scanning := false (* empty, or closer-to-home resident *)
    else if Array.unsafe_get t.hi !i = hi && Array.unsafe_get t.lo !i = lo
    then begin
      res := !i;
      scanning := false
    end
    else begin
      i := (!i + 1) land mask;
      incr d
    end
  done;
  !res

let[@inline] value t slot = t.vals.(slot)

let mem t ~hi ~lo = find t ~hi ~lo >= 0

let find_opt t ~hi ~lo =
  let slot = find t ~hi ~lo in
  if slot < 0 then None else Some t.vals.(slot)

(* Backward-shift deletion: slide the following cluster back one slot
   (each mover's distance drops by one) until an empty slot or a
   distance-1 resident — someone already at home — ends the cluster. *)
let remove t ~hi ~lo =
  let slot = find t ~hi ~lo in
  if slot < 0 then false
  else begin
    let mask = t.mask in
    let i = ref slot in
    let shifting = ref true in
    while !shifting do
      let j = (!i + 1) land mask in
      let m = Array.unsafe_get t.meta j in
      if m <= 1 then begin
        Array.unsafe_set t.meta !i 0;
        t.vals.(!i) <- t.dummy;
        shifting := false
      end
      else begin
        Array.unsafe_set t.hi !i (Array.unsafe_get t.hi j);
        Array.unsafe_set t.lo !i (Array.unsafe_get t.lo j);
        Array.unsafe_set t.meta !i (m - 1);
        t.vals.(!i) <- t.vals.(j);
        i := j
      end
    done;
    t.count <- t.count - 1;
    true
  end

let iter f t =
  for i = 0 to t.mask do
    if t.meta.(i) > 0 then f ~hi:t.hi.(i) ~lo:t.lo.(i) t.vals.(i)
  done

(* Largest probe distance currently in the table — exposed so tests can
   assert the robin-hood clustering bound actually holds at scale. *)
let max_probe t =
  let m = ref 0 in
  for i = 0 to t.mask do
    if t.meta.(i) > !m then m := t.meta.(i)
  done;
  !m

let capacity t = t.mask + 1
