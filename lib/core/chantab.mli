(** Channel table: maps a demultiplexed {!Lrp_proto.Demux.flow} to the NI
    channel that should receive the packet.

    Resolution rules (mirroring the PCB rules, executed by the NI / the
    interrupt handler):

    - UDP: the channel of the socket bound to the destination port;
    - TCP: the connection's own channel (created when the connection —
      even an embryonic one — comes into existence), falling back to the
      listening socket's channel for connection-establishment requests;
    - non-first IP fragments: a dedicated fragment channel that the IP
      reassembly code checks when it is missing pieces (section 3.2);
    - ICMP and other non-endpoint protocols: the proxy daemon's channel
      (section 3.5).

    Endpoint mappings are stored in a single packed-key {!Flowtab}: a
    flow key is [(namespace lsl 32) lor src-ip] / [(src-port lsl 16) lor
    dst-port], so a demux probe is one integer-keyed robin-hood lookup —
    no tuple allocation, no structural hashing. *)

type t

val create :
  ?arena:Lrp_net.Parena.t ->
  ?frag_limit:int -> ?icmp_limit:int -> ?fwd_limit:int -> unit -> t
(** [arena] is the descriptor arena the dedicated channels (and, by
    convention, every per-socket channel registered here) draw from;
    kernels pass their shared arena. *)

val frag_channel : t -> Channel.t
val icmp_channel : t -> Channel.t
val fwd_channel : t -> Channel.t

val add_udp : t -> port:int -> Channel.t -> unit
(** @raise Invalid_argument if the port is already bound. *)

val remove_udp : t -> port:int -> unit

val add_tcp :
  t ->
  src:Lrp_net.Packet.ip ->
  src_port:int -> dst_port:int -> Channel.t -> unit
(** Bind a connection's four-tuple, replacing any previous binding. *)

val remove_tcp :
  t -> src:Lrp_net.Packet.ip -> src_port:int -> dst_port:int -> unit

val add_tcp_listen : t -> port:int -> Channel.t -> unit
(** @raise Invalid_argument if the port is already listened on. *)

val remove_tcp_listen : t -> port:int -> unit

val resolve : t -> Lrp_proto.Demux.flow -> Channel.t option
(** Find the destination channel for a classified flow; [None] (counted
    in {!unmatched}) when no endpoint matches. *)

val resolve_packet : t -> Lrp_net.Packet.t -> Channel.t option
(** Classify and probe in one pass: behaves exactly like
    [resolve t (Demux.flow_of_packet pkt)] but allocates no intermediate
    flow value — one packed-key probe per packet on the demux hot
    path. *)

val unmatched : t -> int
(** Packets that matched no endpoint. *)

val udp_channel_count : t -> int
val tcp_channel_count : t -> int
