(** Channel table: maps a demultiplexed {!Lrp_proto.Demux.flow} to the NI
    channel that should receive the packet.

    Resolution rules (mirroring the PCB rules, executed by the NI / the
    interrupt handler):

    - UDP: the channel of the socket bound to the destination port;
    - TCP: the connection's own channel (created when the connection —
      even an embryonic one — comes into existence), falling back to the
      listening socket's channel for connection-establishment requests;
    - non-first IP fragments: a dedicated fragment channel that the IP
      reassembly code checks when it is missing pieces (section 3.2);
    - ICMP and other non-endpoint protocols: the proxy daemon's channel
      (section 3.5). *)

type t = {
  udp : (int, Channel.t) Hashtbl.t;
  tcp_exact : (Lrp_net.Packet.ip * int * int, Channel.t) Hashtbl.t;
  tcp_listen : (int, Channel.t) Hashtbl.t;
  frag : Channel.t;
  icmp : Channel.t;
  fwd : Channel.t;
  mutable unmatched : int;
}
val create :
  ?frag_limit:int -> ?icmp_limit:int -> ?fwd_limit:int -> unit -> t
val frag_channel : t -> Channel.t
val icmp_channel : t -> Channel.t
val fwd_channel : t -> Channel.t
val add_udp : t -> port:int -> Channel.t -> unit
val remove_udp : t -> port:int -> unit
val add_tcp :
  t ->
  src:Lrp_net.Packet.ip ->
  src_port:int -> dst_port:int -> Channel.t -> unit
val remove_tcp :
  t -> src:Lrp_net.Packet.ip -> src_port:int -> dst_port:int -> unit
val add_tcp_listen : t -> port:int -> Channel.t -> unit
val remove_tcp_listen : t -> port:int -> unit
val resolve : t -> Lrp_proto.Demux.flow -> Channel.t option
val unmatched : t -> int
val udp_channel_count : t -> int
val tcp_channel_count : t -> int
