(** Channel table: maps a demultiplexed {!Lrp_proto.Demux.flow} to the NI
    channel that should receive the packet.

    Resolution rules (mirroring the PCB rules, executed by the NI / the
    interrupt handler):

    - UDP: the channel of the socket bound to the destination port;
    - TCP: the connection's own channel (created when the connection —
      even an embryonic one — comes into existence), falling back to the
      listening socket's channel for connection-establishment requests;
    - non-first IP fragments: a dedicated fragment channel that the IP
      reassembly code checks when it is missing pieces (section 3.2);
    - ICMP and other non-endpoint protocols: the proxy daemon's channel
      (section 3.5).

    Endpoint mappings are stored in a single packed-key {!Flowtab}: a
    flow key is [(namespace lsl 32) lor src-ip] / [(src-port lsl 16) lor
    dst-port], so a demux probe is one integer-keyed robin-hood lookup —
    no tuple allocation, no structural hashing. *)

type t

val create :
  ?arena:Lrp_net.Parena.t ->
  ?frag_limit:int -> ?icmp_limit:int -> ?fwd_limit:int -> unit -> t
(** [arena] is the descriptor arena the dedicated channels (and, by
    convention, every per-socket channel registered here) draw from;
    kernels pass their shared arena. *)

val frag_channel : t -> Channel.t
val icmp_channel : t -> Channel.t
val fwd_channel : t -> Channel.t

val add_udp : t -> port:int -> Channel.t -> unit
(** @raise Invalid_argument if the port is already bound. *)

val remove_udp : t -> port:int -> unit

val add_tcp :
  t ->
  src:Lrp_net.Packet.ip ->
  src_port:int -> dst_port:int -> Channel.t -> unit
(** Bind a connection's four-tuple, replacing any previous binding. *)

val remove_tcp :
  t -> src:Lrp_net.Packet.ip -> src_port:int -> dst_port:int -> unit

val add_tcp_listen : t -> port:int -> Channel.t -> unit
(** @raise Invalid_argument if the port is already listened on. *)

val remove_tcp_listen : t -> port:int -> unit

val resolve : t -> Lrp_proto.Demux.flow -> Channel.t option
(** Find the destination channel for a classified flow; [None] (counted
    in {!unmatched}) when no endpoint matches. *)

val resolve_packet : t -> Lrp_net.Packet.t -> Channel.t option
(** Classify and probe in one pass: behaves exactly like
    [resolve t (Demux.flow_of_packet pkt)] but allocates no intermediate
    flow value — one packed-key probe per packet on the demux hot
    path.  (Cold-path convenience over {!resolve_slot}; the option
    result still boxes.) *)

(** {2 Allocation-free resolution}

    The per-packet demux probe used by the NI and interrupt handlers.
    [resolve_slot] returns an int slot code instead of a
    [Channel.t option], so the probe allocates nothing at all:
    non-negative codes are {!Flowtab} slots (valid until the next table
    mutation), negative codes name the dedicated channels or a miss. *)

val slot_none : int
(** No endpoint matched (the packet will be dropped); counted in
    {!unmatched}. *)

val slot_frag : int
(** The dedicated fragment channel. *)

val slot_icmp : int
(** The dedicated ICMP/proxy channel. *)

val resolve_slot : t -> Lrp_net.Packet.t -> int
(** Classify and probe in one pass, returning a slot code.  Agrees with
    {!resolve_packet}: [resolve_slot] returns {!slot_none} exactly when
    [resolve_packet] returns [None], and otherwise
    [channel_of_slot t (resolve_slot t pkt)] is the channel
    [resolve_packet] would box. *)

val channel_of_slot : t -> int -> Channel.t
(** Decode a slot code returned by {!resolve_slot}.
    @raise Invalid_argument on {!slot_none}. *)

val unmatched : t -> int
(** Packets that matched no endpoint. *)

val udp_channel_count : t -> int
val tcp_channel_count : t -> int
