(** NI channels (paper section 3.1).

    An NI channel is the queue shared between the network interface and the
    rest of the kernel.  Each socket gets its own channel; all received
    traffic for the socket flows through it.  The channel is where LRP's two
    load-control mechanisms live:

    - {b early packet discard}: once the queue is full, further packets for
      this socket are silently dropped by the NI (or the interrupt handler,
      for soft demux) before any host resources are invested;
    - {b feedback}: because receiver protocol processing runs at the
      receiving application's priority, a receiver that cannot keep up stops
      draining its channel, and the overload is shed at the NI without
      affecting any other socket.

    [processing_enabled] implements the listening-socket rule of section
    3.4: protocol processing is disabled for listeners whose backlog is
    exceeded, causing further SYNs to die here, cheaply.

    [intr_requested] is the interrupt-suppression flag of section 3.3: the
    NI raises a host interrupt only when the queue transitions from empty to
    non-empty and a receiver asked to be notified. *)

type t
(** An NI channel.  Abstract: all state changes go through the operations
    below, which is what lets the NI (or interrupt handler) and the kernel
    share it safely. *)

val create : ?arena:Lrp_net.Parena.t -> ?limit:int -> name:string -> unit -> t
(** Fresh empty channel; [limit] (default 32 packets) is the early-discard
    threshold.  Queued frames live as descriptors in [arena] (the kernel
    passes its shared arena so every channel draws from one descriptor
    pool; standalone channels get a private arena), and the queue itself
    is a flat ring of handles sized exactly [limit]. *)

val name : t -> string

val id : t -> int
(** Unique channel identifier (used as a table key by the kernel). *)

type enqueue_result = Queued of [ `Was_empty | `Was_nonempty ] | Discarded

val enqueue : t -> Lrp_net.Packet.t -> enqueue_result
(** What the NI does on packet arrival: early discard when the queue is
    full or processing is disabled, FIFO append otherwise.  The transition
    tag lets the caller implement interrupt suppression. *)

(** {2 Alloc-free fast path}

    The per-packet hot path uses integer result codes and a null-packet
    sentinel so that admission and consumption allocate nothing. *)

val discarded_code : int
val queued_was_empty : int
val queued_was_nonempty : int

val enqueue_code : t -> Lrp_net.Packet.t -> int
(** {!enqueue} returning one of the codes above instead of a variant. *)

val pop : t -> Lrp_net.Packet.t
(** Dequeue without boxing: [Lrp_net.Packet.null] (compare with [==])
    means the queue was empty. *)

val dequeue : t -> Lrp_net.Packet.t option

val peek : t -> Lrp_net.Packet.t option

val length : t -> int

val is_empty : t -> bool

val extract : t -> (Lrp_net.Packet.t -> bool) -> Lrp_net.Packet.t list
(** Remove and return queued packets matching the predicate; used by IP
    reassembly to fish missing fragments out of the fragment channel. *)

val request_interrupt : t -> unit
(** Receiver is blocked: ask the NI for an interrupt on the next
    empty-to-non-empty transition (section 3.3). *)

val clear_interrupt_request : t -> unit

val interrupt_requested : t -> bool

val enable_processing : t -> unit

val disable_processing : t -> unit
(** Gate used for listening sockets whose backlog is exceeded: while
    disabled, every enqueue is discarded cheaply (section 3.4). *)

val processing_enabled : t -> bool

val enqueued : t -> int
(** Packets accepted since creation. *)

val discarded : t -> int
(** Early discards due to a full queue. *)

val discarded_disabled : t -> int
(** Discards while processing was disabled (e.g. SYN-flood victims). *)

val high_watermark : t -> int
(** Deepest queue occupancy observed since creation (overload
    forensics: a high watermark near [limit] means the channel has been
    on the edge of early discard). *)

val pp : Format.formatter -> t -> unit
