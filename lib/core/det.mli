(** Deterministic (sorted-key) iteration over [Hashtbl.t].

    Unordered [Hashtbl.iter]/[fold]/[to_seq] are banned outside this module
    (lint rule D2): any result that can reach output must be derived in a
    reproducible order.  All helpers snapshot the table first, so the
    callback may freely add or remove bindings. *)

val bindings : ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key ([cmp] defaults to [Stdlib.compare]; keys in
    this repo are ints, strings or tuples of those).  Duplicate-key bindings
    keep most-recent-first order. *)

val sorted_keys : ?cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Keys in ascending order (one per binding, duplicates included). *)

val iter_sorted :
  ?cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted f tbl] applies [f] to every binding in ascending key
    order. *)

val fold_sorted :
  ?cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted f tbl init] folds over bindings in ascending key order. *)
