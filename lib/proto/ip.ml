(** IP fragmentation and reassembly. *)

open Lrp_net

(* [fragment pkt ~mtu] splits a datagram whose wire size exceeds [mtu] into
   fragments.  Offsets are chosen so every on-the-wire fragment offset is a
   multiple of 8, as IPv4 requires.  Returns [pkt] unchanged when it fits. *)
let fragment (pkt : Packet.t) ~mtu =
  if Packet.wire_bytes pkt <= mtu then [ pkt ]
  else
    match pkt.Packet.body with
    | Packet.Fragment _ -> invalid_arg "Ip.fragment: already a fragment"
    | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ ->
        let th = Packet.transport_header_bytes pkt in
        let total = Packet.payload_length pkt in
        (* Capacity of a fragment's IP payload, 8-byte aligned. *)
        let cap = (mtu - Packet.ip_header_bytes) / 8 * 8 in
        if cap <= th then invalid_arg "Ip.fragment: mtu too small";
        (* First fragment carries the transport header. *)
        let first_len = min total (cap - th) in
        let rec rest off acc =
          if off >= total then List.rev acc
          else
            let len = min cap (total - off) in
            let last = off + len >= total in
            let frag =
              { Packet.ip = pkt.Packet.ip;
                body = Packet.Fragment { whole = pkt; foff = off; flen = len; last } }
            in
            rest (off + len) (frag :: acc)
        in
        let first =
          { Packet.ip = pkt.Packet.ip;
            body =
              Packet.Fragment
                { whole = pkt; foff = 0; flen = first_len;
                  last = first_len >= total } }
        in
        first :: rest first_len []

(* --- reassembly ------------------------------------------------------- *)

module Reasm = struct
  type pending = {
    whole : Packet.t;
    mutable have : (int * int) list;  (* received (off, len) ranges *)
    mutable total : int option;       (* payload length, once the last fragment is seen *)
    mutable first_seen : float;       (* for timeout pruning *)
  }

  type t = {
    table : (Packet.ip * int, pending) Hashtbl.t;  (* (src, ident) *)
    timeout : float;
    mutable completed : int;
    mutable timed_out : int;
  }

  let create ?(timeout = 30_000_000. (* 30 s, BSD default *)) () =
    { table = Hashtbl.create 32; timeout; completed = 0; timed_out = 0 }

  let ranges_cover have total =
    let sorted = List.sort compare have in
    let rec go expect = function
      | [] -> expect >= total
      | (off, len) :: rest ->
          if off > expect then false else go (max expect (off + len)) rest
    in
    go 0 sorted

  (* [insert t ~now frag_pkt] records a fragment.  Returns [Some whole] when
     the datagram is complete (and forgets it). *)
  let insert t ~now (pkt : Packet.t) =
    match pkt.Packet.body with
    | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ -> Some pkt
    | Packet.Fragment f ->
        let key = (pkt.Packet.ip.Packet.src, pkt.Packet.ip.Packet.ident) in
        let p =
          match Hashtbl.find_opt t.table key with
          | Some p -> p
          | None ->
              let p =
                { whole = f.Packet.whole; have = []; total = None;
                  first_seen = now }
              in
              Hashtbl.replace t.table key p;
              p
        in
        p.have <- (f.Packet.foff, f.Packet.flen) :: p.have;
        if f.Packet.last then p.total <- Some (f.Packet.foff + f.Packet.flen);
        (match p.total with
         | Some total when ranges_cover p.have total ->
             Hashtbl.remove t.table key;
             t.completed <- t.completed + 1;
             Some p.whole
         | Some _ | None -> None)

  (* Drop incomplete datagrams older than the timeout. *)
  let prune t ~now =
    let stale =
      Lrp_det.Det.fold_sorted
        (fun key p acc -> if now -. p.first_seen > t.timeout then key :: acc else acc)
        t.table []
    in
    List.iter
      (fun key ->
        Hashtbl.remove t.table key;
        t.timed_out <- t.timed_out + 1)
      stale;
    List.length stale

  let pending_count t = Hashtbl.length t.table
  let completed t = t.completed
  let timed_out t = t.timed_out

  let register_metrics t m ~prefix =
    let module Metrics = Lrp_trace.Metrics in
    Metrics.gauge m (prefix ^ ".completed") (fun () ->
        float_of_int t.completed);
    Metrics.gauge m (prefix ^ ".timed_out") (fun () ->
        float_of_int t.timed_out);
    Metrics.gauge m (prefix ^ ".pending") (fun () ->
        float_of_int (Hashtbl.length t.table))
end
