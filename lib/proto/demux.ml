(** Early packet demultiplexing (paper section 3.2).

    The classifier extracts a {!flow} from a packet: everything the NI (or
    the host interrupt handler, for soft demux) needs to find the
    destination NI channel.  It is self-contained, non-blocking, performs no
    allocation beyond the returned value, and handles every packet in the
    TCP/IP family — including IP fragments, where a fragment that does not
    carry the transport header cannot be demultiplexed and goes to a special
    reassembly channel.

    Two implementations are provided: [flow_of_packet] over the simulator's
    structured packets (hot path) and [flow_of_bytes] over the wire format
    produced by {!Lrp_net.Codec} (faithful to what NI firmware would run).
    A property test asserts they agree. *)

open Lrp_net

type flow =
  | Udp_flow of { src : Packet.ip; src_port : int; dst_port : int }
  | Tcp_flow of { src : Packet.ip; src_port : int; dst_port : int;
                  syn_only : bool }
      (** [syn_only] marks a connection-establishment request (SYN without
          ACK), which matches only listening sockets. *)
  | Frag_flow of { src : Packet.ip; ident : int }
      (** Non-first fragment: no transport header, cannot be demultiplexed
          to an endpoint. *)
  | Icmp_flow
  | Other_flow of int  (* unknown IP protocol *)

(* Compact identifier for trace events: flows of different protocols land
   in disjoint ranges so a trace line is unambiguous without the full
   structured value. *)
let flow_id = function
  | Udp_flow { dst_port; _ } -> dst_port
  | Tcp_flow { dst_port; _ } -> 100_000 + dst_port
  | Frag_flow { ident; _ } -> 200_000 + ident
  | Icmp_flow -> 300_000
  | Other_flow p -> 400_000 + p

let pp_flow fmt = function
  | Udp_flow { src; src_port; dst_port } ->
      Fmt.pf fmt "udp %a:%d->:%d" Packet.pp_ip src src_port dst_port
  | Tcp_flow { src; src_port; dst_port; syn_only } ->
      Fmt.pf fmt "tcp%s %a:%d->:%d"
        (if syn_only then "(syn)" else "")
        Packet.pp_ip src src_port dst_port
  | Frag_flow { src; ident } -> Fmt.pf fmt "frag %a id=%d" Packet.pp_ip src ident
  | Icmp_flow -> Fmt.pf fmt "icmp"
  | Other_flow p -> Fmt.pf fmt "proto %d" p

let flow_of_packet (pkt : Packet.t) =
  match pkt.Packet.body with
  | Packet.Udp (u, _) ->
      Udp_flow
        { src = pkt.Packet.ip.Packet.src; src_port = u.Packet.usrc_port;
          dst_port = u.Packet.udst_port }
  | Packet.Tcp (h, _) ->
      Tcp_flow
        { src = pkt.Packet.ip.Packet.src; src_port = h.Packet.tsrc_port;
          dst_port = h.Packet.tdst_port;
          syn_only = h.Packet.flags.Packet.syn && not h.Packet.flags.Packet.ack }
  | Packet.Icmp _ -> Icmp_flow
  | Packet.Fragment f ->
      if f.Packet.foff <> 0 then
        Frag_flow { src = pkt.Packet.ip.Packet.src; ident = pkt.Packet.ip.Packet.ident }
      else begin
        (* First fragment: the transport header is present, demultiplex as
           the whole datagram would. *)
        match f.Packet.whole.Packet.body with
        | Packet.Udp (u, _) ->
            Udp_flow
              { src = pkt.Packet.ip.Packet.src; src_port = u.Packet.usrc_port;
                dst_port = u.Packet.udst_port }
        | Packet.Tcp (h, _) ->
            Tcp_flow
              { src = pkt.Packet.ip.Packet.src; src_port = h.Packet.tsrc_port;
                dst_port = h.Packet.tdst_port;
                syn_only =
                  h.Packet.flags.Packet.syn && not h.Packet.flags.Packet.ack }
        | Packet.Icmp _ -> Icmp_flow
        | Packet.Fragment _ -> Frag_flow { src = pkt.Packet.ip.Packet.src; ident = pkt.Packet.ip.Packet.ident }
      end

(* --- Allocation-free classification --------------------------------- *)

(* The receive hot path needs three facts about a packet — its protocol
   class, its trace id, and (for UDP) its destination port — but not the
   boxed {!flow} value.  These mirror [flow_of_packet] exactly (the demux
   equivalence property test pins the agreement); all constructors below
   are constant, so classification allocates nothing. *)

type flow_class = Udp_class | Tcp_class | Frag_class | Icmp_class

let[@inline] class_of_body = function
  | Packet.Udp _ -> Udp_class
  | Packet.Tcp _ -> Tcp_class
  | Packet.Icmp _ -> Icmp_class
  | Packet.Fragment _ -> Frag_class

let class_of_packet (pkt : Packet.t) =
  match pkt.Packet.body with
  | Packet.Fragment f when f.Packet.foff = 0 -> (
      (* first fragment: classified as the whole datagram *)
      match class_of_body f.Packet.whole.Packet.body with
      | Frag_class -> Frag_class (* degenerate nesting stays a fragment *)
      | c -> c)
  | body -> class_of_body body

(* [flow_id (flow_of_packet pkt)] without the intermediate flow. *)
let flow_id_of_packet (pkt : Packet.t) =
  let id_of_body ~ident = function
    | Packet.Udp (u, _) -> u.Packet.udst_port
    | Packet.Tcp (h, _) -> 100_000 + h.Packet.tdst_port
    | Packet.Icmp _ -> 300_000
    | Packet.Fragment _ -> 200_000 + ident
  in
  let ident = pkt.Packet.ip.Packet.ident in
  match pkt.Packet.body with
  | Packet.Fragment f when f.Packet.foff = 0 ->
      id_of_body ~ident f.Packet.whole.Packet.body
  | body -> id_of_body ~ident body

(* Destination port of a UDP packet (first-fragment aware); -1 when the
   packet is not UDP-classified. *)
let udp_dst_port_of_packet (pkt : Packet.t) =
  match pkt.Packet.body with
  | Packet.Udp (u, _) -> u.Packet.udst_port
  | Packet.Fragment f when f.Packet.foff = 0 -> (
      match f.Packet.whole.Packet.body with
      | Packet.Udp (u, _) -> u.Packet.udst_port
      | _ -> -1)
  | _ -> -1

(* Byte-level classifier: mirrors what would run on the adaptor's embedded
   CPU.  Raises nothing: malformed packets classify as [Other_flow]. *)
let flow_of_bytes b =
  let open Codec in
  match decode b with
  | exception Bad_packet _ -> Other_flow (-1)
  | d ->
      if d.d_frag_off <> 0 then Frag_flow { src = d.d_src; ident = d.d_ident }
      else if d.d_proto = ipproto_udp then
        (match (d.d_src_port, d.d_dst_port) with
         | Some sp, Some dp -> Udp_flow { src = d.d_src; src_port = sp; dst_port = dp }
         | _, _ -> Other_flow d.d_proto)
      else if d.d_proto = ipproto_tcp then
        (match (d.d_src_port, d.d_dst_port, d.d_tcp_flags) with
         | Some sp, Some dp, Some fl ->
             Tcp_flow
               { src = d.d_src; src_port = sp; dst_port = dp;
                 syn_only = fl.Packet.syn && not fl.Packet.ack }
         | _, _, _ -> Other_flow d.d_proto)
      else if d.d_proto = ipproto_icmp then Icmp_flow
      else Other_flow d.d_proto

let equal_flow (a : flow) (b : flow) = a = b
