(** TCP state machine.

    A from-scratch TCP sufficient for the paper's workloads: three-way
    handshake with a bounded listen backlog (the SYN-flood experiment,
    Figure 5, hinges on it), sliding-window flow control, slow start /
    congestion avoidance / fast retransmit, RTO estimation with Karn's rule
    and exponential backoff, FIN teardown and a configurable TIME_WAIT (the
    paper sets it to 500 ms for the HTTP experiment).

    The module is architecture-neutral: it consumes and produces packets and
    side effects through an {!env} of callbacks, and never consumes
    simulated CPU itself.  The *caller* charges protocol-processing cost in
    whatever context it runs — BSD charges it at software-interrupt level,
    LRP in the receiving process or its APP thread.  This split is exactly
    what lets the same protocol code run under every architecture, mirroring
    how the paper reused the 4.4BSD networking code in all kernels. *)

open Lrp_net

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

let state_name = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closing -> "CLOSING"
  | Time_wait -> "TIME_WAIT"

(* A connection's timers are persistent records, allocated once in
   [make_conn] and re-armed in place: re-arming writes three fields and
   schedules one engine event — no timer record, no closure.  The engine
   event is cancelled for real (engine-level, O(1) lazy) when the timer is
   stopped, so TCP's dominant pattern — a retransmit timer re-armed on
   every ACK and almost never firing — never reaches dispatch.

   [tgen] guards the window between the engine event firing and the
   kernel-posted protocol work actually running: a stop or re-arm in that
   window bumps the generation, and {!timer_fired} drops the stale expiry.
   [cookie] is kernel scratch (the engine event handle); TCP never reads
   it. *)
type timer = {
  mutable armed : bool;
  mutable tgen : int;
  mutable cookie : Lrp_engine.Engine.handle;
  mutable on_fire : conn -> unit;
  mutable tconn : conn option;  (* set once, right after [make_conn] *)
}

and env = {
  now : unit -> float;
  emit : Packet.t -> unit;
      (** transmit a segment (the caller routes it into IP output) *)
  start_timer : timer -> float -> unit;
      (** arm [timer] to expire after a delay, in protocol-processing
          context ([timer]'s conn identifies whose APP thread — and whose
          CPU account — the work belongs to under LRP).  The kernel stores
          its event handle in [timer.cookie] and delivers the expiry
          through {!timer_fired} with the generation it read at arm
          time *)
  stop_timer : timer -> unit;
      (** cancel the engine event behind [timer.cookie]; called only while
          the timer is armed *)
  on_readable : conn -> unit;     (** receive buffer has data or EOF *)
  on_writable : conn -> unit;     (** send buffer gained space *)
  on_established : conn -> unit;  (** active open completed *)
  on_accept_ready : conn -> conn -> unit;  (** listener, new child ready *)
  on_syn_received : conn -> conn -> unit;
      (** listener created an embryonic child: the kernel registers it in
          its PCB / channel tables so later segments demultiplex to it *)
  on_connect_failed : conn -> unit;
  on_reset : conn -> unit;
  on_time_wait : conn -> unit;
      (** entered TIME_WAIT: NI-LRP uses this to deallocate the NI channel
          early so channels scale to many connections (section 4.2) *)
  on_closed : conn -> unit;       (** connection fully gone; deregister *)
  mss : int;
  time_wait_duration : float;
  initial_rto : float;
  max_syn_retries : int;
}

and conn = {
  env : env;
  id : int;
  local_ip : Packet.ip;
  local_port : int;
  mutable remote : (Packet.ip * int) option;
  mutable state : state;
  mutable meta : int;  (* opaque to TCP; the kernel stores a socket id *)
  (* --- send side --- *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;          (* peer's advertised window *)
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dup_acks : int;
  mutable unacked : (int * Payload.t) list;  (* (seq, payload), oldest first *)
  mutable unsent : Payload.t list;           (* app data not yet segmented *)
  mutable unsent_bytes : int;
  sndq_limit : int;
  mutable fin_queued : bool;
  mutable fin_seq : int;          (* sequence number the FIN occupies, -1 if unset *)
  (* --- receive side --- *)
  mutable rcv_nxt : int;
  mutable ooo : (int * Payload.t) list;  (* out-of-order segments *)
  mutable rcvq : Payload.t list;         (* in-order data for the app (reversed) *)
  mutable rcvq_bytes : int;
  rcv_buf_limit : int;
  mutable fin_received : bool;
  mutable last_advertised_wnd : int;
  (* --- timers / rtt --- *)
  rtx_timer : timer;      (* retransmission; doubles as the TIME_WAIT clock *)
  persist_timer : timer;  (* zero-window probe *)
  mutable srtt : float;           (* smoothed rtt, us; <0 = no sample yet *)
  mutable rttvar : float;
  mutable rto : float;
  mutable backoff : int;
  mutable timing : (int * float) option;  (* (seq expected to ack, send time) *)
  mutable syn_retries : int;
  (* --- listener --- *)
  backlog : int;
  accept_queue : conn Queue.t;
  mutable syn_pending : int;      (* embryonic children of this listener *)
  mutable parent : conn option;   (* set on passive children *)
  (* --- stats --- *)
  mutable segs_sent : int;
  mutable segs_rcvd : int;
  mutable bytes_sent : int;
  mutable bytes_rcvd : int;
  mutable retransmits : int;
  mutable syn_drops_backlog : int;
}

(* Connection ids come from the per-engine id space installed on this
   domain (Lrp_engine.Idspace): per-cell sequences, independent of other
   simulations or shards allocating concurrently. *)

let make_timer () =
  { armed = false; tgen = 0; cookie = Lrp_engine.Engine.none;
    on_fire = (fun _ -> ()); tconn = None }

let make_conn env ~local_ip ~local_port ?(sndq_limit = 32 * 1024)
    ?(rcv_buf_limit = 32 * 1024) ?(backlog = 0) ~state () =
  let c =
    { env; id = Lrp_engine.Idspace.next_conn_id (); local_ip; local_port;
      remote = None; state;
      meta = -1;
      snd_una = 0; snd_nxt = 0; snd_wnd = 0; cwnd = float_of_int env.mss;
      ssthresh = 65_535.; dup_acks = 0; unacked = []; unsent = [];
      unsent_bytes = 0; sndq_limit; fin_queued = false; fin_seq = -1;
      rcv_nxt = 0; ooo = []; rcvq = []; rcvq_bytes = 0; rcv_buf_limit;
      fin_received = false; last_advertised_wnd = rcv_buf_limit;
      rtx_timer = make_timer (); persist_timer = make_timer ();
      srtt = -1.; rttvar = 0.;
      rto = env.initial_rto; backoff = 0; timing = None; syn_retries = 0;
      backlog; accept_queue = Queue.create (); syn_pending = 0; parent = None;
      segs_sent = 0; segs_rcvd = 0; bytes_sent = 0; bytes_rcvd = 0;
      retransmits = 0; syn_drops_backlog = 0 }
  in
  c.rtx_timer.tconn <- Some c;
  c.persist_timer.tconn <- Some c;
  c

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let advertised_window c = max 0 (c.rcv_buf_limit - c.rcvq_bytes)

let remote_exn c =
  match c.remote with
  | Some r -> r
  | None -> invalid_arg "Tcp: connection has no remote endpoint"

let segment c ?(payload = Payload.synthetic 0) ~seq fl =
  let rip, rport = remote_exn c in
  c.segs_sent <- c.segs_sent + 1;
  c.last_advertised_wnd <- advertised_window c;
  Packet.tcp ~src:c.local_ip ~dst:rip ~src_port:c.local_port ~dst_port:rport
    ~seq ~ack_no:c.rcv_nxt ~flags:fl ~window:(min 65_535 c.last_advertised_wnd)
    payload

let send_ack c = c.env.emit (segment c ~seq:c.snd_nxt (Packet.flags ~ack:true ()))

let send_rst_for (pkt : Packet.t) ~emit =
  (* Standalone RST in response to a segment for a nonexistent connection. *)
  match pkt.Packet.body with
  | Packet.Tcp (h, p) when not h.Packet.flags.Packet.rst ->
      let seg_len =
        Payload.length p
        + (if h.Packet.flags.Packet.syn then 1 else 0)
        + if h.Packet.flags.Packet.fin then 1 else 0
      in
      let rst =
        Packet.tcp ~src:pkt.Packet.ip.Packet.dst ~dst:pkt.Packet.ip.Packet.src
          ~src_port:h.Packet.tdst_port ~dst_port:h.Packet.tsrc_port
          ~seq:(if h.Packet.flags.Packet.ack then h.Packet.ack_no else 0)
          ~ack_no:(h.Packet.seq + seg_len)
          ~flags:(Packet.flags ~rst:true ~ack:true ())
          ~window:0 (Payload.synthetic 0)
      in
      emit rst
  | Packet.Tcp _ | Packet.Udp _ | Packet.Icmp _ | Packet.Fragment _ -> ()

let timer_conn tm =
  match tm.tconn with
  | Some c -> c
  | None -> invalid_arg "Tcp: timer not attached to a connection"

let timer_gen tm = tm.tgen

let timer_armed tm = tm.armed

(* Arm (or re-arm) a persistent timer: bump the generation so any expiry
   already in flight goes stale, cancel the superseded engine event, and
   schedule the new one.  No allocation. *)
let arm_timer c tm ~delay fire =
  tm.tgen <- tm.tgen + 1;
  if tm.armed then c.env.stop_timer tm;
  tm.armed <- true;
  tm.on_fire <- fire;
  c.env.start_timer tm delay

let halt_timer c tm =
  if tm.armed then begin
    tm.tgen <- tm.tgen + 1;
    tm.armed <- false;
    c.env.stop_timer tm
  end

(* Kernel entry point: deliver an expiry whose engine event fired at
   generation [gen].  A stop or re-arm since then makes it stale. *)
let timer_fired tm ~gen =
  if tm.armed && tm.tgen = gen then begin
    tm.armed <- false;
    tm.on_fire (timer_conn tm)
  end

let in_flight c = c.snd_nxt - c.snd_una

let send_window c = min c.snd_wnd (int_of_float c.cwnd)

(* ------------------------------------------------------------------ *)
(* Retransmission timer                                                 *)
(* ------------------------------------------------------------------ *)

let rec arm_rtx c =
  let delay = c.rto *. float_of_int (1 lsl min c.backoff 6) in
  arm_timer c c.rtx_timer ~delay on_rtx_timeout

and disarm_rtx c = halt_timer c c.rtx_timer

and on_rtx_timeout c =
  match c.state with
  | Closed | Time_wait | Listen -> ()
  | Syn_sent ->
      if c.syn_retries >= c.env.max_syn_retries then begin
        enter_closed c;
        c.env.on_connect_failed c
      end
      else begin
        c.syn_retries <- c.syn_retries + 1;
        c.backoff <- c.backoff + 1;
        c.retransmits <- c.retransmits + 1;
        c.env.emit (segment c ~seq:(c.snd_una) (Packet.flags ~syn:true ()));
        arm_rtx c
      end
  | Syn_received ->
      if c.syn_retries >= c.env.max_syn_retries then begin
        (* Give up on the embryonic connection. *)
        (match c.parent with
         | Some l -> l.syn_pending <- max 0 (l.syn_pending - 1)
         | None -> ());
        enter_closed c
      end
      else begin
        c.syn_retries <- c.syn_retries + 1;
        c.backoff <- c.backoff + 1;
        c.retransmits <- c.retransmits + 1;
        c.env.emit
          (segment c ~seq:c.snd_una (Packet.flags ~syn:true ~ack:true ()));
        arm_rtx c
      end
  | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Last_ack | Closing ->
      (* Timeout: collapse the congestion window, retransmit the oldest
         outstanding segment, back off. *)
      c.timing <- None (* Karn: do not sample retransmitted segments *);
      c.ssthresh <- Float.max (float_of_int (2 * c.env.mss))
          (float_of_int (in_flight c) /. 2.);
      c.cwnd <- float_of_int c.env.mss;
      c.dup_acks <- 0;
      c.backoff <- c.backoff + 1;
      retransmit_oldest c;
      arm_rtx c

and retransmit_oldest c =
  match c.unacked with
  | (seq, payload) :: _ ->
      c.retransmits <- c.retransmits + 1;
      let fl = Packet.flags ~ack:true () in
      c.env.emit (segment c ~payload ~seq fl)
  | [] ->
      if c.fin_queued && c.fin_seq >= 0 && c.snd_una <= c.fin_seq then begin
        c.retransmits <- c.retransmits + 1;
        c.env.emit (segment c ~seq:c.fin_seq (Packet.flags ~fin:true ~ack:true ()))
      end

(* ------------------------------------------------------------------ *)
(* Output engine                                                        *)
(* ------------------------------------------------------------------ *)

and output c =
  (* Send as much queued data as the windows permit, in MSS segments. *)
  let progress = ref false in
  let rec send_more () =
    let wnd = send_window c in
    let can = wnd - in_flight c in
    if can > 0 && c.unsent_bytes > 0 then begin
      let take = min (min can c.env.mss) c.unsent_bytes in
      let payload = take_unsent c take in
      let seq = c.snd_nxt in
      c.unacked <- c.unacked @ [ (seq, payload) ];
      c.snd_nxt <- c.snd_nxt + Payload.length payload;
      c.bytes_sent <- c.bytes_sent + Payload.length payload;
      if c.timing = None then
        c.timing <- Some (seq + Payload.length payload, c.env.now ());
      (* PSH only on the segment that drains the send queue (BSD's
         TF_MORETOCOME sense): mid-buffer segments leave it clear, which
         is what lets a receive-offload engine aggregate them. *)
      let psh = c.unsent_bytes = 0 in
      c.env.emit (segment c ~payload ~seq (Packet.flags ~ack:true ~psh ()));
      progress := true;
      send_more ()
    end
  in
  send_more ();
  (* FIN rides after all data has been sent. *)
  if c.fin_queued && c.unsent_bytes = 0 && c.fin_seq < 0 then begin
    c.fin_seq <- c.snd_nxt;
    c.snd_nxt <- c.snd_nxt + 1;
    c.env.emit (segment c ~seq:c.fin_seq (Packet.flags ~fin:true ~ack:true ()));
    progress := true
  end;
  if !progress then begin
    c.backoff <- 0;
    arm_rtx c
  end;
  (* Zero-window persist: make sure we eventually probe. *)
  if c.unsent_bytes > 0 && send_window c <= 0 && in_flight c = 0
     && not (timer_armed c.persist_timer)
  then arm_timer c c.persist_timer ~delay:5_000_000. on_persist_timeout

and on_persist_timeout c =
  if c.unsent_bytes > 0 && send_window c <= 0 && in_flight c = 0 then begin
    (* Probe with one byte. *)
    let payload = take_unsent c 1 in
    let seq = c.snd_nxt in
    c.unacked <- c.unacked @ [ (seq, payload) ];
    c.snd_nxt <- c.snd_nxt + 1;
    c.env.emit (segment c ~payload ~seq (Packet.flags ~ack:true ()));
    arm_rtx c
  end

and take_unsent c n =
  (* Remove exactly [n] bytes from the head of the unsent queue. *)
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match c.unsent with
      | [] -> invalid_arg "Tcp.take_unsent: not enough data"
      | p :: rest ->
          let len = Payload.length p in
          if len <= n then begin
            c.unsent <- rest;
            go (n - len) (p :: acc)
          end
          else begin
            let head = Payload.sub p 0 n in
            c.unsent <- Payload.sub p n (len - n) :: rest;
            go 0 (head :: acc)
          end
  in
  let parts = go n [] in
  c.unsent_bytes <- c.unsent_bytes - n;
  Payload.concat parts

(* ------------------------------------------------------------------ *)
(* State transitions                                                    *)
(* ------------------------------------------------------------------ *)

and enter_closed c =
  disarm_rtx c;
  halt_timer c c.persist_timer;
  if c.state <> Closed then begin
    c.state <- Closed;
    c.env.on_closed c
  end

(* The retransmission timer is idle from here to the end of the
   connection's life, so TIME_WAIT reuses its record as the 2MSL clock. *)
and enter_time_wait c =
  c.state <- Time_wait;
  disarm_rtx c;
  c.env.on_time_wait c;
  arm_timer c c.rtx_timer ~delay:c.env.time_wait_duration on_time_wait_expire

and on_time_wait_expire c = if c.state = Time_wait then enter_closed c

(* ------------------------------------------------------------------ *)
(* RTT estimation (Jacobson/Karels; Karn handled via [timing=None])     *)
(* ------------------------------------------------------------------ *)

and rtt_sample c sample =
  if c.srtt < 0. then begin
    c.srtt <- sample;
    c.rttvar <- sample /. 2.
  end
  else begin
    let err = sample -. c.srtt in
    c.srtt <- c.srtt +. (err /. 8.);
    c.rttvar <- c.rttvar +. ((Float.abs err -. c.rttvar) /. 4.)
  end;
  c.rto <- Float.max 200_000. (c.srtt +. (4. *. c.rttvar))

(* ------------------------------------------------------------------ *)
(* Input                                                                *)
(* ------------------------------------------------------------------ *)

and process_ack c (h : Packet.tcp_header) =
  let ack = h.Packet.ack_no in
  c.snd_wnd <- h.Packet.window;
  if ack > c.snd_una && ack <= c.snd_nxt then begin
    (* New data acknowledged. *)
    let acked = ack - c.snd_una in
    c.snd_una <- ack;
    c.dup_acks <- 0;
    c.backoff <- 0;
    (* RTT sample (Karn: only when the timed segment wasn't retransmitted). *)
    (match c.timing with
     | Some (seq, t0) when ack >= seq ->
         rtt_sample c (c.env.now () -. t0);
         c.timing <- None
     | Some _ | None -> ());
    (* Trim the retransmission queue. *)
    let rec trim = function
      | (seq, payload) :: rest when seq + Payload.length payload <= ack ->
          trim rest
      | (seq, payload) :: rest when seq < ack ->
          (* Partial ack inside a segment: keep the unacked tail. *)
          let keep = seq + Payload.length payload - ack in
          let off = Payload.length payload - keep in
          (ack, Payload.sub payload off keep) :: rest
      | rest -> rest
    in
    c.unacked <- trim c.unacked;
    (* Congestion window growth. *)
    let fmss = float_of_int c.env.mss in
    if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd +. float_of_int acked
    else c.cwnd <- c.cwnd +. (fmss *. fmss /. c.cwnd);
    if c.unacked = [] && not (c.fin_queued && c.fin_seq >= 0 && ack <= c.fin_seq)
    then disarm_rtx c
    else arm_rtx c;
    c.env.on_writable c
  end
  else if ack = c.snd_una && in_flight c > 0 then begin
    c.dup_acks <- c.dup_acks + 1;
    if c.dup_acks = 3 then begin
      (* Fast retransmit / recovery (simplified: halve and resend). *)
      c.ssthresh <- Float.max (float_of_int (2 * c.env.mss))
          (float_of_int (in_flight c) /. 2.);
      c.cwnd <- c.ssthresh;
      c.timing <- None;
      retransmit_oldest c
    end
  end

and deliver_data c (h : Packet.tcp_header) payload =
  let len = Payload.length payload in
  if len = 0 then ()
  else begin
    let seq = h.Packet.seq in
    if seq = c.rcv_nxt then begin
      (* In-order: accept (respecting our buffer), then drain the
         out-of-order list. *)
      let room = advertised_window c in
      let take = min len room in
      if take > 0 then begin
        let part = if take = len then payload else Payload.sub payload 0 take in
        c.rcvq <- part :: c.rcvq;
        c.rcvq_bytes <- c.rcvq_bytes + take;
        c.bytes_rcvd <- c.bytes_rcvd + take;
        c.rcv_nxt <- c.rcv_nxt + take
      end;
      let rec drain () =
        match List.assoc_opt c.rcv_nxt c.ooo with
        | Some p ->
            c.ooo <- List.remove_assoc c.rcv_nxt c.ooo;
            let room = advertised_window c in
            let len = Payload.length p in
            let take = min len room in
            if take > 0 then begin
              let part = if take = len then p else Payload.sub p 0 take in
              c.rcvq <- part :: c.rcvq;
              c.rcvq_bytes <- c.rcvq_bytes + take;
              c.bytes_rcvd <- c.bytes_rcvd + take;
              c.rcv_nxt <- c.rcv_nxt + take;
              if take = len then drain ()
            end
        | None -> ()
      in
      drain ();
      c.env.on_readable c
    end
    else if seq > c.rcv_nxt then begin
      (* Out of order: stash (bounded by the receive buffer size). *)
      if not (List.mem_assoc seq c.ooo)
         && List.fold_left (fun a (_, p) -> a + Payload.length p) 0 c.ooo
            < c.rcv_buf_limit
      then c.ooo <- (seq, payload) :: c.ooo
    end;
    (* else: duplicate of already-received data; just re-ack *)
    send_ack c
  end

and process_fin c (h : Packet.tcp_header) payload_len =
  let fin_seq = h.Packet.seq + payload_len in
  if fin_seq = c.rcv_nxt then begin
    c.rcv_nxt <- c.rcv_nxt + 1;
    c.fin_received <- true;
    send_ack c;
    (match c.state with
     | Established ->
         c.state <- Close_wait;
         c.env.on_readable c (* EOF *)
     | Fin_wait_1 ->
         (* Our FIN not yet acked: simultaneous close. *)
         c.state <- Closing
     | Fin_wait_2 ->
         c.env.on_readable c;
         enter_time_wait c
     | Syn_received | Listen | Syn_sent | Close_wait | Last_ack | Closing
     | Time_wait | Closed -> ())
  end
  else send_ack c

and established_input c (h : Packet.tcp_header) payload =
  process_ack c h;
  (* Post-ACK state transitions for our own FIN. *)
  (match c.state with
   | Fin_wait_1 when c.fin_seq >= 0 && c.snd_una > c.fin_seq ->
       c.state <- Fin_wait_2
   | Closing when c.fin_seq >= 0 && c.snd_una > c.fin_seq -> enter_time_wait c
   | Last_ack when c.fin_seq >= 0 && c.snd_una > c.fin_seq -> enter_closed c
   | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
   | Syn_received | Listen | Syn_sent | Time_wait | Closed -> ());
  deliver_data c h payload;
  if h.Packet.flags.Packet.fin then process_fin c h (Payload.length payload);
  output c

and input c (pkt : Packet.t) =
  match pkt.Packet.body with
  | Packet.Udp _ | Packet.Icmp _ | Packet.Fragment _ ->
      invalid_arg "Tcp.input: not a TCP segment"
  | Packet.Tcp (h, payload) ->
      c.segs_rcvd <- c.segs_rcvd + 1;
      if h.Packet.flags.Packet.rst then begin
        match c.state with
        | Closed | Listen | Time_wait -> ()
        | Syn_sent | Syn_received | Established | Fin_wait_1 | Fin_wait_2
        | Close_wait | Last_ack | Closing ->
            (match c.parent with
             | Some l when c.state = Syn_received ->
                 l.syn_pending <- max 0 (l.syn_pending - 1)
             | Some _ | None -> ());
            disarm_rtx c;
            c.state <- Closed;
            c.env.on_reset c;
            c.env.on_closed c
      end
      else
        match c.state with
        | Closed -> send_rst_for pkt ~emit:c.env.emit
        | Listen -> listener_input c pkt h
        | Syn_sent ->
            if h.Packet.flags.Packet.syn && h.Packet.flags.Packet.ack
               && h.Packet.ack_no = c.snd_nxt
            then begin
              c.snd_una <- h.Packet.ack_no;
              c.rcv_nxt <- h.Packet.seq + 1;
              c.snd_wnd <- h.Packet.window;
              c.state <- Established;
              disarm_rtx c;
              (match c.timing with
               | Some (_, t0) -> rtt_sample c (c.env.now () -. t0)
               | None -> ());
              c.timing <- None;
              send_ack c;
              c.env.on_established c;
              output c
            end
            (* simultaneous open not modelled *)
        | Syn_received ->
            if h.Packet.flags.Packet.syn && not h.Packet.flags.Packet.ack then
              (* Duplicate SYN: re-send SYN-ACK. *)
              c.env.emit
                (segment c ~seq:c.snd_una (Packet.flags ~syn:true ~ack:true ()))
            else if h.Packet.flags.Packet.ack && h.Packet.ack_no = c.snd_nxt
            then begin
              c.snd_una <- h.Packet.ack_no;
              c.snd_wnd <- h.Packet.window;
              c.state <- Established;
              disarm_rtx c;
              (match c.parent with
               | Some l ->
                   l.syn_pending <- max 0 (l.syn_pending - 1);
                   Queue.add c l.accept_queue;
                   c.env.on_accept_ready l c
               | None -> ());
              (* The ACK may carry data. *)
              if Payload.length payload > 0 || h.Packet.flags.Packet.fin then
                established_input c h payload
            end
        | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Last_ack
        | Closing ->
            if h.Packet.flags.Packet.syn then
              (* Stray SYN on a synchronized connection: re-ack. *)
              send_ack c
            else established_input c h payload
        | Time_wait ->
            (* Re-ack (e.g. retransmitted FIN). *)
            if h.Packet.flags.Packet.fin then send_ack c

and listener_input l (pkt : Packet.t) (h : Packet.tcp_header) =
  if h.Packet.flags.Packet.syn && not h.Packet.flags.Packet.ack then begin
    if l.syn_pending + Queue.length l.accept_queue >= l.backlog then
      (* Backlog exceeded: BSD silently discards the SYN (after having paid
         for its processing — the crux of Figure 5). *)
      l.syn_drops_backlog <- l.syn_drops_backlog + 1
    else begin
      let c =
        make_conn l.env ~local_ip:l.local_ip ~local_port:l.local_port
          ~sndq_limit:l.sndq_limit ~rcv_buf_limit:l.rcv_buf_limit
          ~state:Syn_received ()
      in
      c.remote <- Some (pkt.Packet.ip.Packet.src, h.Packet.tsrc_port);
      c.parent <- Some l;
      c.rcv_nxt <- h.Packet.seq + 1;
      c.snd_wnd <- h.Packet.window;
      c.snd_una <- 0;
      c.snd_nxt <- 1 (* our SYN consumes sequence 0 *);
      l.syn_pending <- l.syn_pending + 1;
      l.env.on_syn_received l c;
      c.env.emit (segment c ~seq:0 (Packet.flags ~syn:true ~ack:true ()));
      arm_rtx c
    end
  end
  (* Anything else arriving at a listener that isn't for an existing child:
     ignore (the kernel demultiplexer sends RSTs for unknown segments). *)

(* ------------------------------------------------------------------ *)
(* API used by the socket layer                                         *)
(* ------------------------------------------------------------------ *)

let create_listener env ~local_ip ~local_port ?sndq_limit ?rcv_buf_limit
    ~backlog () =
  make_conn env ~local_ip ~local_port ?sndq_limit ?rcv_buf_limit ~backlog
    ~state:Listen ()

let create_active env ~local_ip ~local_port ~remote ?sndq_limit
    ?rcv_buf_limit () =
  let c = make_conn env ~local_ip ~local_port ?sndq_limit ?rcv_buf_limit ~state:Syn_sent () in
  c.remote <- Some remote;
  c.snd_una <- 0;
  c.snd_nxt <- 1;
  c.timing <- Some (1, env.now ());
  c.env.emit (segment c ~seq:0 (Packet.flags ~syn:true ()));
  arm_rtx c;
  c

(* [send c payload] queues application data; returns the number of bytes
   accepted (0 when the send buffer is full — the caller blocks). *)
let send c payload =
  match c.state with
  | Established | Close_wait ->
      let len = Payload.length payload in
      let queued = c.unsent_bytes + (c.snd_nxt - c.snd_una) in
      let room = c.sndq_limit - queued in
      if room <= 0 then `Full
      else begin
        let take = min room len in
        let part = if take = len then payload else Payload.sub payload 0 take in
        c.unsent <- c.unsent @ [ part ];
        c.unsent_bytes <- c.unsent_bytes + take;
        output c;
        `Sent take
      end
  | Closed | Listen | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2
  | Last_ack | Closing | Time_wait -> `Closed

(* [recv c ~max] takes up to [max] buffered bytes. *)
let recv c ~max:maxb =
  if c.rcvq_bytes > 0 then begin
    let chunks = List.rev c.rcvq in
    let rec take acc got = function
      | [] -> (List.rev acc, got, [])
      | p :: rest ->
          let len = Payload.length p in
          if got + len <= maxb then take (p :: acc) (got + len) rest
          else begin
            let want = maxb - got in
            if want = 0 then (List.rev acc, got, p :: rest)
            else
              ( List.rev (Payload.sub p 0 want :: acc), maxb,
                Payload.sub p want (len - want) :: rest )
          end
    in
    let taken, got, rest = take [] 0 chunks in
    c.rcvq <- List.rev rest;
    c.rcvq_bytes <- c.rcvq_bytes - got;
    (* Window update: if our advertised window was closed (or nearly) and
       has now re-opened by an MSS, tell the sender. *)
    if advertised_window c - c.last_advertised_wnd >= c.env.mss then send_ack c;
    `Data (Payload.concat taken)
  end
  else if c.fin_received then `Eof
  else
    match c.state with
    | Closed | Time_wait | Last_ack | Closing -> `Eof
    | Established | Listen | Syn_sent | Syn_received | Fin_wait_1 | Fin_wait_2
    | Close_wait -> `Wait

let close c =
  match c.state with
  | Established ->
      c.state <- Fin_wait_1;
      c.fin_queued <- true;
      output c
  | Close_wait ->
      c.state <- Last_ack;
      c.fin_queued <- true;
      output c
  | Syn_sent | Syn_received ->
      (match c.parent with
       | Some l when c.state = Syn_received ->
           l.syn_pending <- max 0 (l.syn_pending - 1)
       | Some _ | None -> ());
      enter_closed c
  | Listen -> enter_closed c
  | Closed | Fin_wait_1 | Fin_wait_2 | Last_ack | Closing | Time_wait -> ()

let abort c =
  (match (c.state, c.remote) with
   | (Established | Syn_received | Fin_wait_1 | Fin_wait_2 | Close_wait
     | Closing | Last_ack), Some _ ->
       c.env.emit (segment c ~seq:c.snd_nxt (Packet.flags ~rst:true ~ack:true ()))
   | _, _ -> ());
  enter_closed c

let accept_pop l = Queue.take_opt l.accept_queue

let accept_ready l = not (Queue.is_empty l.accept_queue)

let sndq_room c = max 0 (c.sndq_limit - (c.unsent_bytes + (c.snd_nxt - c.snd_una)))

let readable c = c.rcvq_bytes > 0 || c.fin_received || c.state = Closed

let state c = c.state

let counters c =
  [ ("segs_sent", c.segs_sent); ("segs_rcvd", c.segs_rcvd);
    ("bytes_sent", c.bytes_sent); ("bytes_rcvd", c.bytes_rcvd);
    ("retransmits", c.retransmits);
    ("syn_drops_backlog", c.syn_drops_backlog) ]
