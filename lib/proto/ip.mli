(** IP fragmentation and reassembly. *)

val fragment : Lrp_net.Packet.t -> mtu:int -> Lrp_net.Packet.t list
(** Split a datagram into MTU-sized fragments with 8-byte-aligned wire
    offsets; returns the packet unchanged when it fits.
    @raise Invalid_argument on nested fragments or an MTU smaller than the
    headers. *)

(** Reassembly table, keyed by (source, IP ident).  [insert] returns the
    whole datagram when the last missing piece arrives; [prune] expires
    incomplete datagrams older than the timeout (ip_slowtimo). *)

module Reasm :
  sig
    type pending = {
      whole : Lrp_net.Packet.t;
      mutable have : (int * int) list;
      mutable total : int option;
      mutable first_seen : float;
    }
    type t = {
      table : (Lrp_net.Packet.ip * int, pending) Hashtbl.t;
      timeout : float;
      mutable completed : int;
      mutable timed_out : int;
    }
    val create : ?timeout:float -> unit -> t
    val ranges_cover : (int * int) list -> int -> bool
    val insert :
      t -> now:float -> Lrp_net.Packet.t -> Lrp_net.Packet.t option
    (** Record a fragment; [Some whole] on completion.  Non-fragments pass
        straight through. *)

    val prune : t -> now:float -> int
    val pending_count : t -> int
    val completed : t -> int
    val timed_out : t -> int

    (** Expose completion/timeout counts and the pending-table size as pull
        gauges under [prefix]. *)
    val register_metrics : t -> Lrp_trace.Metrics.t -> prefix:string -> unit
  end
