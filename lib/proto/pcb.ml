(** Protocol control block tables.

    The classic BSD lookup structures, generic in what they map to (the BSD
    kernel maps to sockets; the LRP channel table maps to NI channels):

    - UDP: by local port (connected UDP sockets also match on the remote
      address first),
    - TCP: exact four-tuple match first, then a listening-socket match on
      the local port.

    [lookup_cost_cells] reports how many table cells a lookup touched, which
    feeds the cost model: the paper notes BSD's PCB lookup is linear and was
    a known performance problem for HTTP servers (it cites Mogul [16] and
    shortens TIME_WAIT in the Figure-5 experiment for exactly this
    reason).

    The tuple-keyed tables here are D4-exempt (see {!Lrp_lint.Config}):
    this module models the {e BSD} lookup whose cost the paper
    criticises — it is not on any LRP fast path (the NI demultiplexer
    uses the packed-key {!Lrp_core.Chantab}/[Flowtab] instead), and its
    generic value type cannot reuse [Flowtab] without inverting the
    layer DAG. *)

open Lrp_net

type addr = Packet.ip * int (* host, port *)

type 'a t = {
  udp_bound : (int, 'a) Hashtbl.t;           (* local port -> v *)
  udp_connected : (addr * int, 'a) Hashtbl.t; (* (remote, local port) -> v *)
  tcp_exact : (addr * int, 'a) Hashtbl.t;    (* (remote, local port) -> v *)
  tcp_listen : (int, 'a) Hashtbl.t;          (* local port -> v *)
  mutable cells_touched : int;
}

let create () =
  { udp_bound = Hashtbl.create 64; udp_connected = Hashtbl.create 64;
    tcp_exact = Hashtbl.create 256; tcp_listen = Hashtbl.create 16;
    cells_touched = 0 }

let bind_udp t ~port v =
  if Hashtbl.mem t.udp_bound port then invalid_arg "Pcb.bind_udp: port in use";
  Hashtbl.replace t.udp_bound port v

let connect_udp t ~remote ~port v = Hashtbl.replace t.udp_connected (remote, port) v

let unbind_udp t ~port = Hashtbl.remove t.udp_bound port

let disconnect_udp t ~remote ~port = Hashtbl.remove t.udp_connected (remote, port)

let insert_tcp t ~remote ~port v =
  if Hashtbl.mem t.tcp_exact (remote, port) then
    invalid_arg "Pcb.insert_tcp: four-tuple in use";
  Hashtbl.replace t.tcp_exact (remote, port) v

let remove_tcp t ~remote ~port = Hashtbl.remove t.tcp_exact (remote, port)

let listen_tcp t ~port v =
  if Hashtbl.mem t.tcp_listen port then invalid_arg "Pcb.listen_tcp: port in use";
  Hashtbl.replace t.tcp_listen port v

let unlisten_tcp t ~port = Hashtbl.remove t.tcp_listen port

let touch t n = t.cells_touched <- t.cells_touched + n

let lookup_udp t ~remote ~port =
  touch t 1;
  match Hashtbl.find_opt t.udp_connected (remote, port) with
  | Some v -> Some v
  | None ->
      touch t 1;
      Hashtbl.find_opt t.udp_bound port

let lookup_tcp t ~remote ~port =
  touch t 1;
  match Hashtbl.find_opt t.tcp_exact (remote, port) with
  | Some v -> Some v
  | None ->
      touch t 1;
      Hashtbl.find_opt t.tcp_listen port

let lookup_tcp_established t ~remote ~port =
  touch t 1;
  Hashtbl.find_opt t.tcp_exact (remote, port)

let lookup_tcp_listen t ~port =
  touch t 1;
  Hashtbl.find_opt t.tcp_listen port

let udp_count t = Hashtbl.length t.udp_bound
let tcp_count t = Hashtbl.length t.tcp_exact
let lookup_cost_cells t = t.cells_touched

(* Sorted by (remote, port) so callers observe PCBs in a reproducible
   order regardless of hash-table layout. *)
let iter_tcp t f =
  Lrp_det.Det.iter_sorted
    (fun (remote, port) v -> f ~remote ~port v)
    t.tcp_exact
