(** Early packet demultiplexing (paper section 3.2).

    The classifier extracts a {!flow} from a packet: everything the NI (or
    the host interrupt handler, for soft demux) needs to find the
    destination NI channel.  It is self-contained, non-blocking, performs no
    allocation beyond the returned value, and handles every packet in the
    TCP/IP family — including IP fragments, where a fragment that does not
    carry the transport header cannot be demultiplexed and goes to a special
    reassembly channel.

    Two implementations are provided: [flow_of_packet] over the simulator's
    structured packets (hot path) and [flow_of_bytes] over the wire format
    produced by {!Lrp_net.Codec} (faithful to what NI firmware would run).
    A property test asserts they agree. *)

type flow =
    Udp_flow of { src : Lrp_net.Packet.ip; src_port : int; dst_port : int; }
  | Tcp_flow of { src : Lrp_net.Packet.ip; src_port : int; dst_port : int;
      syn_only : bool;
    }
  | Frag_flow of { src : Lrp_net.Packet.ip; ident : int; }
  | Icmp_flow
  | Other_flow of int
val flow_id : flow -> int
(** Compact identifier for trace events; flows of different protocols land
    in disjoint integer ranges (UDP: destination port, TCP: 100000+port,
    fragments: 200000+ident, ICMP: 300000, other: 400000+proto). *)

val pp_flow : Format.formatter -> flow -> unit
val flow_of_packet : Lrp_net.Packet.t -> flow
(** Structural classifier: the simulator's hot path. *)

val flow_of_bytes : bytes -> flow
(** Byte-level classifier over the wire format — what the adaptor's
    embedded CPU would run.  Never raises: malformed input classifies as
    [Other_flow]. *)

val equal_flow : flow -> flow -> bool

(** {2 Allocation-free classification}

    The receive hot path needs a packet's protocol class, trace id, and
    (for UDP) destination port — but not the boxed {!flow} value.  These
    agree with [flow_of_packet] by construction; the demux equivalence
    property test pins the agreement. *)

type flow_class = Udp_class | Tcp_class | Frag_class | Icmp_class

val class_of_packet : Lrp_net.Packet.t -> flow_class
(** Protocol class, first-fragment aware.  Constant constructors only —
    allocates nothing. *)

val flow_id_of_packet : Lrp_net.Packet.t -> int
(** [flow_id (flow_of_packet pkt)] without the intermediate flow. *)

val udp_dst_port_of_packet : Lrp_net.Packet.t -> int
(** Destination port of a UDP-classified packet (first-fragment aware);
    [-1] otherwise. *)
