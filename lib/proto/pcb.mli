(** Protocol control block tables.

    The classic BSD lookup structures, generic in what they map to (the BSD
    kernel maps to sockets; the LRP channel table maps to NI channels):

    - UDP: by local port (connected UDP sockets also match on the remote
      address first),
    - TCP: exact four-tuple match first, then a listening-socket match on
      the local port.

    [lookup_cost_cells] reports how many table cells a lookup touched, which
    feeds the cost model: the paper notes BSD's PCB lookup is linear and was
    a known performance problem for HTTP servers (it cites Mogul [16] and
    shortens TIME_WAIT in the Figure-5 experiment for exactly this
    reason). *)

type addr = Lrp_net.Packet.ip * int
type 'a t = {
  udp_bound : (int, 'a) Hashtbl.t;
  udp_connected : (addr * int, 'a) Hashtbl.t;
  tcp_exact : (addr * int, 'a) Hashtbl.t;
  tcp_listen : (int, 'a) Hashtbl.t;
  mutable cells_touched : int;
}
val create : unit -> 'a t
val bind_udp : 'a t -> port:int -> 'a -> unit
val connect_udp : 'a t -> remote:addr -> port:int -> 'a -> unit
val unbind_udp : 'a t -> port:int -> unit
val disconnect_udp : 'a t -> remote:addr -> port:int -> unit
val insert_tcp : 'a t -> remote:addr -> port:int -> 'a -> unit
val remove_tcp : 'a t -> remote:addr -> port:int -> unit
val listen_tcp : 'a t -> port:int -> 'a -> unit
val unlisten_tcp : 'a t -> port:int -> unit
val touch : 'a t -> int -> unit
(** Connected-socket match first, then the wildcard bind. *)

val lookup_udp : 'a t -> remote:addr -> port:int -> 'a option
(** Exact four-tuple match first, then a listener on the local port. *)

val lookup_tcp : 'a t -> remote:addr -> port:int -> 'a option
val lookup_tcp_established : 'a t -> remote:addr -> port:int -> 'a option
val lookup_tcp_listen : 'a t -> port:int -> 'a option
val udp_count : 'a t -> int
val tcp_count : 'a t -> int
val lookup_cost_cells : 'a t -> int
(** Total table cells touched by lookups — the feed for the cost model
    (BSD's PCB lookup was a known hot spot for HTTP servers). *)

val iter_tcp : 'a t -> (remote:addr -> port:int -> 'a -> unit) -> unit
