(** TCP state machine.

    A from-scratch TCP sufficient for the paper's workloads: three-way
    handshake with a bounded listen backlog (the SYN-flood experiment,
    Figure 5, hinges on it), sliding-window flow control, slow start /
    congestion avoidance / fast retransmit, RTO estimation with Karn's rule
    and exponential backoff, FIN teardown and a configurable TIME_WAIT (the
    paper sets it to 500 ms for the HTTP experiment).

    The module is architecture-neutral: it consumes and produces packets and
    side effects through an {!env} of callbacks, and never consumes
    simulated CPU itself.  The *caller* charges protocol-processing cost in
    whatever context it runs — BSD charges it at software-interrupt level,
    LRP in the receiving process or its APP thread.  This split is exactly
    what lets the same protocol code run under every architecture, mirroring
    how the paper reused the 4.4BSD networking code in all kernels. *)

type state =
    Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait
(** A persistent, re-armable protocol timer (see the implementation notes:
    one record per connection per timer kind, zero-allocation re-arm,
    engine-level cancellation, generation-guarded expiry delivery). *)
type timer = {
  mutable armed : bool;
  mutable tgen : int;
  mutable cookie : Lrp_engine.Engine.handle;
      (** kernel scratch: the engine event backing the armed timer *)
  mutable on_fire : conn -> unit;
  mutable tconn : conn option;
}
and env = {
  now : unit -> float;
  emit : Lrp_net.Packet.t -> unit;
  start_timer : timer -> float -> unit;
      (** arm the timer after a delay, in protocol-processing context; the
          kernel saves its event handle in [cookie] and must deliver the
          expiry via {!timer_fired} with the generation read at arm time *)
  stop_timer : timer -> unit;
      (** cancel the engine event behind [cookie] *)
  on_readable : conn -> unit;
  on_writable : conn -> unit;
  on_established : conn -> unit;
  on_accept_ready : conn -> conn -> unit;
  on_syn_received : conn -> conn -> unit;
  on_connect_failed : conn -> unit;
  on_reset : conn -> unit;
  on_time_wait : conn -> unit;
  on_closed : conn -> unit;
  mss : int;
  time_wait_duration : float;
  initial_rto : float;
  max_syn_retries : int;
}
and conn = {
  env : env;
  id : int;
  local_ip : Lrp_net.Packet.ip;
  local_port : int;
  mutable remote : (Lrp_net.Packet.ip * int) option;
  mutable state : state;
  mutable meta : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dup_acks : int;
  mutable unacked : (int * Lrp_net.Payload.t) list;
  mutable unsent : Lrp_net.Payload.t list;
  mutable unsent_bytes : int;
  sndq_limit : int;
  mutable fin_queued : bool;
  mutable fin_seq : int;
  mutable rcv_nxt : int;
  mutable ooo : (int * Lrp_net.Payload.t) list;
  mutable rcvq : Lrp_net.Payload.t list;
  mutable rcvq_bytes : int;
  rcv_buf_limit : int;
  mutable fin_received : bool;
  mutable last_advertised_wnd : int;
  rtx_timer : timer;
  persist_timer : timer;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : float;
  mutable backoff : int;
  mutable timing : (int * float) option;
  mutable syn_retries : int;
  backlog : int;
  accept_queue : conn Queue.t;
  mutable syn_pending : int;
  mutable parent : conn option;
  mutable segs_sent : int;
  mutable segs_rcvd : int;
  mutable bytes_sent : int;
  mutable bytes_rcvd : int;
  mutable retransmits : int;
  mutable syn_drops_backlog : int;
}

val state_name : state -> string

(** {1 Timer delivery (kernel side)} *)

val timer_conn : timer -> conn
(** The connection a timer belongs to (for LRP context routing).
    @raise Invalid_argument on a timer not yet attached. *)

val timer_gen : timer -> int
(** Current generation; the kernel reads it when the engine event fires and
    passes it back to {!timer_fired}. *)

val timer_armed : timer -> bool

val timer_fired : timer -> gen:int -> unit
(** Deliver an expiry, in protocol-processing context.  Dropped silently
    when the timer was stopped or re-armed after the engine event fired
    ([gen] no longer matches). *)


(** {1 Lifecycle} *)

val create_listener :
  env ->
  local_ip:Lrp_net.Packet.ip ->
  local_port:int ->
  ?sndq_limit:int -> ?rcv_buf_limit:int -> backlog:int -> unit -> conn
(** Passive open: a listening connection whose [backlog] bounds embryonic
    plus accepted-but-unclaimed children. *)

val create_active :
  env ->
  local_ip:Lrp_net.Packet.ip ->
  local_port:int ->
  remote:Lrp_net.Packet.ip * int ->
  ?sndq_limit:int -> ?rcv_buf_limit:int -> unit -> conn
(** Active open: emits the SYN and arms its retransmission timer. *)

(** {1 Input} *)

val input : conn -> Lrp_net.Packet.t -> unit
(** Process one inbound segment for this connection (or listener).  May
    emit segments, start timers and fire [env] callbacks.  Consumes no
    simulated CPU itself — the caller charges the cost in its own
    context (softint under BSD, APP thread or receive call under LRP).
    @raise Invalid_argument on a non-TCP packet. *)

val send_rst_for : Lrp_net.Packet.t -> emit:(Lrp_net.Packet.t -> unit) -> unit
(** Standalone RST in response to a segment that matches no connection. *)

(** {1 Application side} *)

val send : conn -> Lrp_net.Payload.t -> [ `Closed | `Full | `Sent of int ]
(** Queue application data.  [`Sent n] accepted [n] bytes (callers loop /
    block on [`Full]); [`Closed] if the connection cannot accept data. *)

val recv : conn -> max:int -> [ `Data of Lrp_net.Payload.t | `Eof | `Wait ]
(** Take up to [max] buffered stream bytes.  Reading may emit a window
    update when the receive window re-opens by an MSS. *)

val close : conn -> unit
(** Graceful close: queue a FIN after any pending data. *)

val abort : conn -> unit
(** Hard close: emit an RST and drop all state. *)

val accept_pop : conn -> conn option
(** Dequeue an established child from a listener's accept queue. *)

val accept_ready : conn -> bool

val sndq_room : conn -> int
(** Free space in the send buffer. *)

val readable : conn -> bool
(** Data buffered, EOF pending, or connection gone. *)

val state : conn -> state

val advertised_window : conn -> int
(** The receive window this end currently advertises. *)

val counters : conn -> (string * int) list
(** The connection's traffic counters as name/value pairs, for metrics
    registration and reporting: segments and bytes in each direction,
    retransmits and backlog SYN drops. *)
